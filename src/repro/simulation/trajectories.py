"""Monte-Carlo statevector trajectories with stochastic Pauli/phase kicks.

The engine estimates *end-to-end* circuit quality — the quantity the paper's
evaluation ultimately cares about — instead of per-gate errors:

1. the circuit is *fused*: runs of adjacent single-qubit gates on one qubit
   collapse into a single 2x2 matrix (their kick probabilities combine), so
   the hot loop applies far fewer matrices than the raw gate count;
2. ``B`` trajectories advance in lockstep as one ``(B, 2**n)`` batched
   statevector (see :func:`repro.circuits.simulator.apply_matrix`);
3. after each fused op, every involved qubit suffers a random Pauli kick
   (X, Y or Z, weighted by the noise model) with the probability the
   :class:`~repro.simulation.channels.NoiseModel` assigns it — injected by a
   single vectorized per-trajectory 2x2 update on the batch, not a masked
   gather/scatter per Pauli;
4. each trajectory's final state is scored against the noiseless final state
   (state fidelity) and against the noiseless dominant measurement outcome
   (success probability).

Circuits made entirely of Clifford gates skip the dense statevector
altogether: :func:`build_trajectory_plan` selects the Pauli-frame/stabilizer
path of :mod:`repro.simulation.stabilizer`, which scores the same quantities
exactly with two bits per qubit per trajectory and no ``2**n`` arrays — so
Clifford benchmarks (Bernstein-Vazirani above all) run far past the 24-qubit
statevector ceiling.  Non-Clifford circuits whose states stay low-rank (a
static branching-gate analysis bounds the peak nonzeros) take the sparse
(index, amplitude) kernel of :mod:`repro.simulation.sparse` instead, which
also clears the dense ceiling and spills back to the dense kernel if a
forced-sparse run outgrows its plan.

All randomness flows from one ``numpy`` generator seeded by the caller, and
kick draws are consumed in a fixed order independent of which trajectories
are actually kicked, so a (seed, trajectory-count, batch-size) triple pins
the result bit-for-bit — serially, across worker processes, and across the
statevector/stabilizer/sparse paths (all consume the identical draw stream).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..circuits.circuit import QuantumCircuit
from ..circuits.gate import Gate
from ..circuits.library import gate_matrix
from ..circuits.simulator import (
    _matrix_strategy,
    apply_matrix,
    apply_matrix_inplace,
    zero_state,
)
from .channels import NoiseModel
from .sparse import (
    SparseProgram,
    SparseScorer,
    advance_sparse_batch,
    build_sparse_scorer,
    compile_sparse_program,
    default_spill_nnz,
    sparse_auto_budget,
)
from .stabilizer import (
    StabilizerScorer,
    advance_pauli_frames,
    build_scorer,
    is_clifford_circuit,
)

#: Default trajectories per batch: large enough to amortize per-gate Python
#: overhead, small enough that a 12-16 qubit batch stays cache-resident.
DEFAULT_BATCH_SIZE = 25

#: Trajectory plan modes accepted by :func:`build_trajectory_plan`.
PLAN_MODES = ("auto", "statevector", "stabilizer", "sparse")

#: Pauli kick operators, indexed by the noise model's (X, Y, Z) weights.
#: The kick kernel itself uses fused coefficient arithmetic instead of these
#: matrices; they remain the definition the tests pin the kernel against.
_PAULIS = (
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.diag([1.0, -1.0]).astype(complex),
)


@dataclass(frozen=True)
class FusedOp:
    """One fused operation: a matrix, its target qubits, and kick probabilities.

    ``kick_probs[i]`` is the probability that ``qubits[i]`` receives a Pauli
    kick immediately after this op; fusing ``m`` noisy single-qubit gates
    combines their kick probabilities as ``1 - prod(1 - p_i)`` so fusion never
    changes the injected noise, only the number of matrix applications.

    ``gates`` records the constituent library gates in application order
    (their matrix product is ``matrix``); the stabilizer fast path conjugates
    Pauli frames through these instead of multiplying dense matrices.
    """

    matrix: np.ndarray
    qubits: Tuple[int, ...]
    kick_probs: Tuple[float, ...]
    gates: Tuple[Gate, ...] = ()


def _combine_probs(prob_a: float, prob_b: float) -> float:
    """Probability of at least one kick from two independent kick sources."""
    return 1.0 - (1.0 - prob_a) * (1.0 - prob_b)


def fuse_circuit(circuit: QuantumCircuit, noise: Optional[NoiseModel] = None) -> List[FusedOp]:
    """Fuse runs of adjacent single-qubit gates into single :class:`FusedOp` s.

    Single-qubit gates are deferred and matrix-multiplied per qubit until a
    multi-qubit gate touches that qubit (1q ops on disjoint qubits commute,
    so deferral preserves semantics).  When ``noise`` is given, each fused op
    carries the combined kick probability of its constituent gates: ``rz``
    gates are error-free (virtual Z delays, as in
    :func:`repro.core.errors.estimate_circuit_error`), other single-qubit
    gates use the qubit's rate, and multi-qubit gates split their coupler
    rate evenly over the involved qubits.
    """
    pending: Dict[int, Tuple[np.ndarray, float, Tuple[Gate, ...]]] = {}
    ops: List[FusedOp] = []

    def flush(qubit: int) -> None:
        entry = pending.pop(qubit, None)
        if entry is not None:
            matrix, prob, gates = entry
            ops.append(FusedOp(matrix, (qubit,), (prob,), gates))

    for gate in circuit:
        if gate.is_single_qubit:
            qubit = gate.qubits[0]
            rate = 0.0
            if noise is not None and gate.name != "rz":
                rate = noise.single_qubit_rate(qubit)
            matrix = gate_matrix(gate)
            if qubit in pending:
                prev_matrix, prev_prob, prev_gates = pending[qubit]
                pending[qubit] = (
                    matrix @ prev_matrix,
                    _combine_probs(prev_prob, rate),
                    prev_gates + (gate,),
                )
            else:
                pending[qubit] = (matrix, rate, (gate,))
            continue
        for qubit in gate.qubits:
            flush(qubit)
        kick_probs = (0.0,) * gate.num_qubits
        if noise is not None:
            if gate.is_two_qubit:
                rate = noise.coupler_rate(*gate.qubits)
            else:
                # Multi-qubit gates beyond CZ only occur pre-compilation;
                # charge the default coupler rate.
                rate = noise.default_coupler_rate
            # Split the gate error over its qubits so the no-kick probability
            # of the whole gate is exactly 1 - rate.
            per_qubit = 1.0 - (1.0 - min(rate, 1.0)) ** (1.0 / gate.num_qubits)
            kick_probs = (per_qubit,) * gate.num_qubits
        ops.append(FusedOp(gate_matrix(gate), gate.qubits, kick_probs, (gate,)))

    for qubit in sorted(pending):
        flush(qubit)
    return ops


def apply_fused_ops(
    state: np.ndarray, ops: Sequence[FusedOp], num_qubits: int
) -> np.ndarray:
    """Apply fused ops to a (batched) statevector, without noise."""
    for op in ops:
        state = apply_matrix(state, op.matrix, op.qubits, num_qubits)
    return state


def ideal_final_state(circuit: QuantumCircuit) -> np.ndarray:
    """Noiseless final state of a circuit via the fused-op fast path."""
    ops = fuse_circuit(circuit)
    return apply_fused_ops(zero_state(circuit.num_qubits), ops, circuit.num_qubits)


@dataclass(frozen=True)
class TrajectoryPlan:
    """Everything one trajectory batch needs, fused and precomputed once.

    A plan is built once per (circuit, noise) pair by
    :func:`build_trajectory_plan` and shared by every batch of the run —
    serially, across pool workers (where its large arrays travel through
    shared memory, see :mod:`repro.simulation.engine`), and across repeats.

    ``mode`` selects the kernel: ``"statevector"`` advances dense ``(B, 2**n)``
    batches and scores them against ``ideal_state``; ``"stabilizer"`` advances
    two-bit Pauli frames and scores them exactly with ``scorer`` (Clifford
    circuits only); ``"sparse"`` advances sorted (index, amplitude) pairs and
    scores them with ``sparse_scorer`` (see :mod:`repro.simulation.sparse`),
    spilling a batch to the dense kernel when any trajectory's support
    exceeds ``spill_nnz``.  Exactly one of ``ideal_state`` / ``scorer`` /
    ``sparse_scorer`` is set.
    """

    num_qubits: int
    ops: Tuple[FusedOp, ...]
    kick_cumweights: np.ndarray
    mode: str
    ideal_state: Optional[np.ndarray] = None
    scorer: Optional[StabilizerScorer] = None
    sparse_program: Optional[SparseProgram] = None
    sparse_scorer: Optional[SparseScorer] = None
    spill_nnz: int = 0


def build_trajectory_plan(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    mode: str = "auto",
    *,
    sparse_spill_nnz: Optional[int] = None,
) -> TrajectoryPlan:
    """Fuse a circuit against a noise model and pick the fastest exact kernel.

    ``mode="auto"`` selects the stabilizer path exactly when every gate of
    the circuit is Clifford; otherwise the sparse kernel when the static
    branching-gate bound of :func:`repro.simulation.sparse.estimate_nnz_bound`
    stays under the dense-equivalent budget of
    :func:`~repro.simulation.sparse.sparse_auto_budget`; otherwise the dense
    statevector kernel.  All three kernels consume the same kick-draw stream
    and score exactly, so the choice never changes results — only speed and
    the qubit ceiling.  ``"statevector"`` / ``"stabilizer"`` / ``"sparse"``
    force a path; forcing ``"stabilizer"`` on a non-Clifford circuit raises
    ``ValueError``, and a forced-sparse plan may spill to the dense kernel
    mid-batch once a trajectory's support exceeds ``sparse_spill_nnz``
    (default :func:`~repro.simulation.sparse.default_spill_nnz`).
    """
    if mode not in PLAN_MODES:
        raise ValueError(f"mode must be one of {PLAN_MODES}, got {mode!r}")
    if circuit.num_qubits != noise.num_qubits:
        raise ValueError(
            f"noise model covers {noise.num_qubits} qubits but the circuit "
            f"has {circuit.num_qubits}"
        )
    if sparse_spill_nnz is not None and sparse_spill_nnz < 1:
        raise ValueError("sparse_spill_nnz must be >= 1")
    if mode == "auto" and is_clifford_circuit(circuit):
        mode = "stabilizer"
    elif mode == "stabilizer" and not is_clifford_circuit(circuit):
        raise ValueError(
            "mode='stabilizer' requires a Clifford-only circuit; "
            "use mode='auto' to fall back to the statevector kernel"
        )
    ops = tuple(fuse_circuit(circuit, noise))
    cumweights = noise.kick_cumulative_weights()
    if mode == "stabilizer":
        return TrajectoryPlan(
            num_qubits=circuit.num_qubits,
            ops=ops,
            kick_cumweights=cumweights,
            mode=mode,
            scorer=build_scorer(circuit),
        )
    if mode in ("auto", "sparse"):
        program = compile_sparse_program(ops, circuit.num_qubits)
        budget = sparse_auto_budget(circuit.num_qubits)
        if mode == "auto":
            sparse_wins = budget >= 1 and program.nnz_bound <= budget
            mode = "sparse" if sparse_wins else "statevector"
        if mode == "sparse":
            spill = (
                sparse_spill_nnz
                if sparse_spill_nnz is not None
                else default_spill_nnz(circuit.num_qubits)
            )
            return TrajectoryPlan(
                num_qubits=circuit.num_qubits,
                ops=ops,
                kick_cumweights=cumweights,
                mode=mode,
                sparse_program=program,
                sparse_scorer=build_sparse_scorer(program),
                spill_nnz=spill,
            )
    ideal = apply_fused_ops(zero_state(circuit.num_qubits), ops, circuit.num_qubits)
    return TrajectoryPlan(
        num_qubits=circuit.num_qubits,
        ops=ops,
        kick_cumweights=cumweights,
        mode=mode,
        ideal_state=ideal,
    )


@dataclass(frozen=True)
class TrajectoryResult:
    """Outcome of a set of Monte-Carlo trajectories of one circuit.

    Attributes
    ----------
    num_qubits:
        Register width of the simulated circuit.
    fidelities:
        Per-trajectory state fidelity ``|<ideal|psi_t>|^2``.
    success_probs:
        Per-trajectory probability of measuring the noiseless dominant
        bitstring.
    ideal_success:
        Probability of the dominant bitstring in the *noiseless* state — the
        ceiling for ``success_probability``.
    kicks:
        Total number of Pauli kicks injected across all trajectories.
    nnz_peak:
        Peak per-trajectory nonzero amplitudes observed by the sparse
        kernel (0 for the dense and stabilizer kernels, which never count).
    """

    num_qubits: int
    fidelities: Tuple[float, ...]
    success_probs: Tuple[float, ...]
    ideal_success: float
    kicks: int
    nnz_peak: int = 0

    @property
    def num_trajectories(self) -> int:
        return len(self.fidelities)

    @property
    def state_fidelity(self) -> float:
        """Mean state fidelity over trajectories (the mixed-state fidelity)."""
        return float(np.mean(self.fidelities)) if self.fidelities else 1.0

    @property
    def success_probability(self) -> float:
        """Mean probability of measuring the noiseless dominant outcome."""
        return float(np.mean(self.success_probs)) if self.success_probs else 1.0

    def as_row(self) -> Dict[str, object]:
        """The fidelity columns merged into a sweep result row.

        ``ideal_success`` is included because ``success_probability`` is only
        meaningful relative to it: a flat-spectrum benchmark (e.g. qgan) has a
        low dominant-outcome probability even noiselessly.
        """
        return {
            "success_probability": round(self.success_probability, 6),
            "ideal_success": round(self.ideal_success, 6),
            "state_fidelity": round(self.state_fidelity, 6),
            "trajectories": self.num_trajectories,
        }

    @staticmethod
    def merge(parts: Sequence["TrajectoryResult"]) -> "TrajectoryResult":
        """Concatenate batch results (in batch order) into one result."""
        if not parts:
            raise ValueError("cannot merge zero trajectory results")
        first = parts[0]
        for part in parts[1:]:
            if part.num_qubits != first.num_qubits:
                raise ValueError("cannot merge results of different register widths")
        return TrajectoryResult(
            num_qubits=first.num_qubits,
            fidelities=tuple(f for part in parts for f in part.fidelities),
            success_probs=tuple(p for part in parts for p in part.success_probs),
            ideal_success=first.ideal_success,
            kicks=sum(part.kicks for part in parts),
            nnz_peak=max(part.nnz_peak for part in parts),
        )


def _inject_kicks(
    states: np.ndarray,
    num_qubits: int,
    qubit: int,
    hit: np.ndarray,
    pauli_pick: np.ndarray,
) -> int:
    """Apply per-trajectory Pauli kicks on one qubit to the batch, in place.

    One fused 2x2 application over the whole ``(batch, 2**n)`` array: each
    trajectory's kick (or identity) becomes four scalar coefficients applied
    to its ``|0>``/``|1>`` amplitude planes — pure index arithmetic plus
    sign/phase multiplies, no masked gather/scatter round-trips.  Unkicked
    trajectories are multiplied by an exact identity, so their amplitudes are
    value-identical to the old per-Pauli masked path.

    Returns the number of kicks injected (every hit trajectory gets one).
    """
    batch = states.shape[0]
    lower = 1 << qubit
    upper = 1 << (num_qubits - qubit - 1)
    view = states.reshape(batch, upper, 2, lower)

    is_x = hit & (pauli_pick == 0)
    is_y = hit & (pauli_pick == 1)
    flip = is_x | is_y
    if not flip.any():
        # Z-only kicks: a diagonal sign flip on the |1> plane of kicked
        # trajectories (everyone else multiplies by exact +1.0).
        sign = np.where(hit, -1.0, 1.0)
        view[:, :, 1, :] *= sign[:, None, None]
        return int(hit.sum())

    is_z = hit & ~flip
    # Per-trajectory 2x2 coefficients, broadcast over the state planes:
    #   new0 = diag0*s0 + off0*s1      new1 = off1*s0 + diag1*s1
    # identity: (1, 0, 0, 1)   X: (0, 1, 1, 0)   Y: (0, -i, i, 0)   Z: (1, 0, 0, -1)
    diag0 = np.where(flip, 0.0, 1.0)[:, None, None]
    diag1 = np.where(flip, 0.0, np.where(is_z, -1.0, 1.0))[:, None, None]
    off0 = (np.where(is_x, 1.0, 0.0) + np.where(is_y, -1j, 0.0))[:, None, None]
    off1 = (np.where(is_x, 1.0, 0.0) + np.where(is_y, 1j, 0.0))[:, None, None]

    plane0 = view[:, :, 0, :]
    plane1 = view[:, :, 1, :]
    new0 = diag0 * plane0 + off0 * plane1
    new1 = off1 * plane0 + diag1 * plane1
    view[:, :, 0, :] = new0
    view[:, :, 1, :] = new1
    return int(hit.sum())


#: Phase units ``i**k`` for the composed-permutation phase exponents.
_PHASE_LUT = np.array([1.0 + 0.0j, 1j, -1.0 + 0.0j, -1j])

#: Ceiling on per-entry prefix snapshots of one program (bytes).  Above it,
#: mid-segment materialization prefixes are recomputed on demand instead —
#: kick hits are rare, and at the register sizes that exceed this ceiling a
#: single statevector pass costs more than the recompute anyway.
_SNAPSHOT_BUDGET = 64 * 2**20


def _unit_exponents(coeffs: Sequence[complex]) -> Optional[np.ndarray]:
    """Each coefficient as an exponent ``k`` with ``i**k == coeff``, exactly.

    Returns ``None`` when any coefficient is not one of ``1, i, -1, -i``:
    only these units multiply and compose without rounding, which is what
    keeps the composed-permutation path exact — every amplitude equal to
    op-by-op application (composition can flip the sign of an IEEE zero,
    nothing more).
    """
    exponents = []
    for coeff in coeffs:
        for power, unit in enumerate((1.0, 1j, -1.0, -1j)):
            if coeff == unit:
                exponents.append(power)
                break
        else:
            return None
    return np.asarray(exponents, dtype=np.uint8)


def _op_spec(op: FusedOp) -> Optional[Tuple[str, Optional[np.ndarray], np.ndarray]]:
    """``(kind, perm, exponents)`` of a composable op, else ``None``.

    Composable ops are generalized permutations and diagonals whose nonzero
    entries are all exact phase units: x/y/z, cx/cz/swap, ccx/ccz, and
    rz/p/cp at multiples of a half turn.  Dense matrices (fused single-qubit
    runs, arbitrary rotations) are program boundaries.
    """
    matrix = np.asarray(op.matrix, dtype=complex)
    strategy = _matrix_strategy(matrix.tobytes(), matrix.shape[0])
    if strategy[0] == "diag":
        exponents = _unit_exponents(strategy[1])
        if exponents is None:
            return None
        return ("diag", None, exponents)
    if strategy[0] == "perm":
        exponents = _unit_exponents(strategy[2])
        if exponents is None:
            return None
        return ("perm", np.asarray(strategy[1], dtype=np.intp), exponents)
    return None


def _map_for(
    spec: Tuple[str, Optional[np.ndarray], np.ndarray],
    targets: Tuple[int, ...],
    num_qubits: int,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Full-register ``(source index, phase exponent)`` arrays of one op.

    ``out[j] = i**pexp[j] * in[idx[j]]`` reproduces the op exactly; ``None``
    stands for the identity map / an all-zero exponent.  Pure index
    arithmetic — no per-amplitude Python work.
    """
    kind, perm, exponents = spec
    j = np.arange(1 << num_qubits, dtype=np.intp)
    sub = (j >> targets[0]) & 1
    for slot in range(1, len(targets)):
        sub = sub | (((j >> targets[slot]) & 1) << slot)
    if kind == "diag":
        idx = None
    else:
        source_sub = perm[sub]
        mask = 0
        for target in targets:
            mask |= 1 << target
        idx = j & ~mask
        for slot, target in enumerate(targets):
            idx |= ((source_sub >> slot) & 1) << target
    pexp = exponents[sub]
    if not pexp.any():
        pexp = None
    return idx, pexp


def _compose(
    cur_idx: Optional[np.ndarray],
    cur_pexp: Optional[np.ndarray],
    idx: Optional[np.ndarray],
    pexp: Optional[np.ndarray],
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Compose op ``(idx, pexp)`` after prefix ``(cur_idx, cur_pexp)``.

    Index maps chain as ``cur_idx[idx]`` (the new op picks which prefix
    entry feeds each output) and phase exponents add mod 4 — both exact, so
    a composed run reproduces op-by-op application amplitude for amplitude.
    """
    if idx is None:
        new_idx = cur_idx
        moved = cur_pexp
    else:
        new_idx = idx if cur_idx is None else cur_idx[idx]
        moved = None if cur_pexp is None else cur_pexp[idx]
    if pexp is None:
        new_pexp = moved
    elif moved is None:
        new_pexp = pexp
    else:
        new_pexp = (pexp + moved) & 3
    return new_idx, new_pexp


@dataclass(frozen=True)
class _SegEntry:
    """One composable op inside a segment: its spec, sites, and prefix.

    ``snapshot`` (prefix from the segment start through this op) is only
    stored for site-carrying entries within the snapshot budget; otherwise
    :func:`_segment_prefix` recomposes it on demand when a kick hits here.
    """

    spec: Tuple[str, Optional[np.ndarray], np.ndarray]
    targets: Tuple[int, ...]
    sites: Tuple[Tuple[int, float], ...]
    snapshot: Optional[Tuple[np.ndarray, Optional[np.ndarray]]]


@dataclass(frozen=True)
class _Segment:
    """A maximal run of composable ops, closed by its final prefix."""

    entries: Tuple[_SegEntry, ...]
    final_idx: np.ndarray
    final_pexp: Optional[np.ndarray]


@dataclass(frozen=True)
class _DenseStep:
    """A program boundary: one dense op applied through the matrix kernel."""

    matrix: np.ndarray
    targets: Tuple[int, ...]
    sites: Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class _Program:
    """Precompiled trajectory program for one (ops, num_qubits) pair."""

    num_qubits: int
    items: Tuple[object, ...]


def _relabel_positions(
    ops: Sequence[FusedOp],
    specs: Sequence[Optional[Tuple[str, Optional[np.ndarray], np.ndarray]]],
    num_qubits: int,
) -> Optional[np.ndarray]:
    """Physical position of each logical qubit, or ``None`` for identity.

    Dense ops on low qubit indices are pathological for the in-place kernel
    (the contiguous inner stride is ``2**qubit`` amplitudes), so the qubits
    dense ops touch most are parked at the top positions.  The relabeling is
    a pure bit permutation of basis indices: it folds into the composed
    gathers for free and never changes any amplitude value.
    """
    if num_qubits < 10:
        return None
    counts: Dict[int, int] = {}
    for op, spec in zip(ops, specs):
        if spec is None:
            for qubit in op.qubits:
                counts[qubit] = counts.get(qubit, 0) + 1
    if not counts:
        return None
    heavy = sorted(counts, key=lambda qubit: (-counts[qubit], qubit))
    rest = [qubit for qubit in range(num_qubits) if qubit not in counts]
    low_to_high = rest + heavy[::-1]
    positions = np.empty(num_qubits, dtype=np.intp)
    for position, qubit in enumerate(low_to_high):
        positions[qubit] = position
    if np.array_equal(positions, np.arange(num_qubits)):
        return None
    return positions


def _restore_map(positions: np.ndarray, num_qubits: int) -> np.ndarray:
    """Gather map returning a relabeled statevector to standard qubit order."""
    i = np.arange(1 << num_qubits, dtype=np.intp)
    restore = np.zeros_like(i)
    for qubit in range(num_qubits):
        restore |= ((i >> qubit) & 1) << int(positions[qubit])
    return restore


def _build_program(ops: Sequence[FusedOp], num_qubits: int) -> _Program:
    """Compile a fused-op list into segments of composed permutations.

    Consecutive permutation/diagonal ops with exact unit coefficients
    collapse into single precomputed gather maps; dense ops and the final
    relabel-restore close segments.  The program reproduces the op-by-op
    evolution exactly by construction: gathers move amplitudes without
    arithmetic and the only multiplies are by exact units of ``i``.
    """
    ops = tuple(ops)
    specs = [_op_spec(op) for op in ops]
    positions = _relabel_positions(ops, specs, num_qubits)

    def phys(qubit: int) -> int:
        return int(positions[qubit]) if positions is not None else int(qubit)

    dim = 1 << num_qubits
    siteful = sum(
        1
        for op, spec in zip(ops, specs)
        if spec is not None and any(p > 0 for p in op.kick_probs)
    )
    snapshots_on = dim * 4 * max(siteful, 1) <= _SNAPSHOT_BUDGET

    items: List[object] = []
    cur_idx: Optional[np.ndarray] = None
    cur_pexp: Optional[np.ndarray] = None
    entries: List[_SegEntry] = []

    def close_segment() -> None:
        nonlocal cur_idx, cur_pexp, entries
        if entries or cur_idx is not None or cur_pexp is not None:
            final_idx = cur_idx if cur_idx is not None else np.arange(dim, dtype=np.intp)
            items.append(_Segment(tuple(entries), final_idx, cur_pexp))
        cur_idx, cur_pexp, entries = None, None, []

    for op, spec in zip(ops, specs):
        targets = tuple(phys(q) for q in op.qubits)
        sites = tuple(
            (phys(q), float(p)) for q, p in zip(op.qubits, op.kick_probs) if p > 0
        )
        if spec is None:
            close_segment()
            items.append(_DenseStep(np.asarray(op.matrix, dtype=complex), targets, sites))
            continue
        op_idx, op_pexp = _map_for(spec, targets, num_qubits)
        cur_idx, cur_pexp = _compose(cur_idx, cur_pexp, op_idx, op_pexp)
        snapshot = None
        if sites and snapshots_on:
            snap_idx = (
                cur_idx if cur_idx is not None else np.arange(dim, dtype=np.intp)
            ).astype(np.int32)
            snapshot = (snap_idx, cur_pexp)
        entries.append(_SegEntry(spec, targets, sites, snapshot))
    if positions is not None:
        cur_idx, cur_pexp = _compose(
            cur_idx, cur_pexp, _restore_map(positions, num_qubits), None
        )
    close_segment()
    return _Program(num_qubits=num_qubits, items=tuple(items))


def _segment_prefix(
    segment: _Segment, position: int, num_qubits: int
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Prefix map from the segment start through ``entries[position]``."""
    entry = segment.entries[position]
    if entry.snapshot is not None:
        return entry.snapshot
    cur_idx: Optional[np.ndarray] = None
    cur_pexp: Optional[np.ndarray] = None
    for earlier in segment.entries[: position + 1]:
        op_idx, op_pexp = _map_for(earlier.spec, earlier.targets, num_qubits)
        cur_idx, cur_pexp = _compose(cur_idx, cur_pexp, op_idx, op_pexp)
    if cur_idx is None:
        cur_idx = np.arange(1 << num_qubits, dtype=np.intp)
    return cur_idx, cur_pexp


class _Cursor:
    """Tracks the last materialization point inside one segment.

    ``advance`` moves the batch from the current point to a later prefix
    with one relative gather (plus an exact unit-phase multiply when the run
    carries phases); the inverse of the current prefix is built lazily only
    when a second materialization actually happens.
    """

    __slots__ = ("idx", "pexp", "_inverse")

    def __init__(self) -> None:
        self.idx: Optional[np.ndarray] = None
        self.pexp: Optional[np.ndarray] = None
        self._inverse: Optional[np.ndarray] = None

    def _inv(self) -> np.ndarray:
        if self._inverse is None:
            size = self.idx.shape[0]
            inverse = np.empty(size, dtype=np.intp)
            inverse[self.idx] = np.arange(size, dtype=np.intp)
            self._inverse = inverse
        return self._inverse

    def advance(
        self,
        states: np.ndarray,
        idx: np.ndarray,
        pexp: Optional[np.ndarray],
    ) -> np.ndarray:
        if self.idx is None:
            rel, rel_pexp = idx, pexp
        else:
            rel = self._inv()[idx]
            if pexp is None and self.pexp is None:
                rel_pexp = None
            elif self.pexp is None:
                rel_pexp = pexp
            else:
                base = self.pexp[rel]
                rel_pexp = ((-base) if pexp is None else (pexp - base)) & 3
        # ``take`` (unlike ``states[:, rel]``) returns a C-contiguous array,
        # which keeps the in-place kernels on their exact bit-for-bit path.
        states = states.take(rel, axis=1)
        if rel_pexp is not None and rel_pexp.any():
            states *= _PHASE_LUT[rel_pexp]
        self.idx, self.pexp, self._inverse = idx, pexp, None
        return states


#: Identity-keyed program cache: plans reuse one fused-op tuple across every
#: batch (and every pool worker attaches a persistent plan), so the program
#: is compiled once per plan.  Entries pin their ops tuple, which keeps the
#: ``is`` key valid for the cache's lifetime.
_PROGRAM_CACHE: List[Tuple[Tuple[FusedOp, ...], int, _Program]] = []
_PROGRAM_CACHE_MAX = 8


def _trajectory_program(ops: Sequence[FusedOp], num_qubits: int) -> _Program:
    """The compiled program of a fused-op tuple, cached by identity."""
    if isinstance(ops, tuple):
        for index, (cached_ops, cached_qubits, program) in enumerate(_PROGRAM_CACHE):
            if cached_ops is ops and cached_qubits == num_qubits:
                if index:
                    _PROGRAM_CACHE.insert(0, _PROGRAM_CACHE.pop(index))
                return program
        program = _build_program(ops, num_qubits)
        _PROGRAM_CACHE.insert(0, (ops, num_qubits, program))
        del _PROGRAM_CACHE[_PROGRAM_CACHE_MAX:]
        return program
    return _build_program(tuple(ops), num_qubits)


def advance_noisy_batch(
    ops: Sequence[FusedOp],
    num_qubits: int,
    batch: int,
    rng: np.random.Generator,
    kick_cumweights: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Advance ``batch`` noisy trajectories in lockstep from ``|0...0>``.

    Returns the ``(batch, 2**num_qubits)`` array of final statevectors and
    the total number of Pauli kicks injected.  The kick draws for every
    (op, qubit) site are consumed in circuit order regardless of which
    trajectories are hit, so the generator's stream — and therefore the
    states — depends only on its seed and the batch size.  Picks are clipped
    into the Pauli table so a cumulative-weight array whose last entry sits a
    few ulp below 1.0 cannot silently drop kicks.

    The kernel runs the circuit's precompiled :func:`_build_program`: maximal
    runs of permutation/diagonal ops collapse into single gathers, the state
    is only materialized at dense ops, at sites where a kick actually hits,
    and at the end — and every amplitude equals in-place op-by-op
    application of the fused ops, because gathers move values untouched
    and all composed phases are exact units of ``i``.  This is the dense
    noisy-evolution kernel: :func:`run_trajectory_batch` scores its states
    against the ideal state, and :func:`noisy_trajectory_states` hands them
    to callers that need the raw vectors (e.g. ``repro.primitives.Estimator``
    expectation values).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    program = _trajectory_program(ops, num_qubits)
    states = np.zeros((batch, 1 << num_qubits), dtype=complex)
    states[:, 0] = 1.0
    kicks = 0
    for item in program.items:
        if isinstance(item, _DenseStep):
            states = apply_matrix_inplace(states, item.matrix, item.targets, num_qubits)
            for qubit, prob in item.sites:
                hit = rng.random(batch) < prob
                pauli_pick = np.minimum(
                    np.searchsorted(kick_cumweights, rng.random(batch)), 2
                )
                if not hit.any():
                    continue
                kicks += _inject_kicks(states, num_qubits, qubit, hit, pauli_pick)
            continue
        cursor = _Cursor()
        materialized_at = -1
        for position, entry in enumerate(item.entries):
            for qubit, prob in entry.sites:
                hit = rng.random(batch) < prob
                pauli_pick = np.minimum(
                    np.searchsorted(kick_cumweights, rng.random(batch)), 2
                )
                if not hit.any():
                    continue
                if materialized_at != position:
                    prefix_idx, prefix_pexp = _segment_prefix(
                        item, position, num_qubits
                    )
                    states = cursor.advance(states, prefix_idx, prefix_pexp)
                    materialized_at = position
                kicks += _inject_kicks(states, num_qubits, qubit, hit, pauli_pick)
        states = cursor.advance(states, item.final_idx, item.final_pexp)
    return states, kicks


def run_trajectory_batch(
    plan: TrajectoryPlan,
    batch: int,
    rng: np.random.Generator,
) -> TrajectoryResult:
    """Advance ``batch`` trajectories of a plan in lockstep and score them.

    The kick draws for every (op, qubit) site are consumed in circuit order
    regardless of which trajectories are hit, so the generator's stream — and
    therefore the result — depends only on its seed and the batch size.

    Each call is one ``sim.batch`` kernel span (tagged with the plan mode);
    the ``sim.kernel_s`` histogram and the ``sim.trajectories`` /
    ``sim.kicks`` / ``sim.batches`` counters accumulate the throughput story
    ``repro bench --fidelity`` reports.
    """
    start = time.perf_counter()
    nnz_peak = 0
    with telemetry.span(
        "sim.batch", qubits=plan.num_qubits, batch=batch, mode=plan.mode
    ):
        if plan.mode == "stabilizer":
            frame_x, frame_z, kicks = advance_pauli_frames(
                plan.ops, plan.num_qubits, batch, rng, plan.kick_cumweights
            )
        elif plan.mode == "sparse":
            sparse_states, kicks, nnz_peak, spilled = advance_sparse_batch(
                plan.sparse_program, batch, rng, plan.kick_cumweights,
                plan.spill_nnz,
            )
        else:
            states, kicks = advance_noisy_batch(
                plan.ops, plan.num_qubits, batch, rng, plan.kick_cumweights
            )
    telemetry.histogram("sim.kernel_s").observe(time.perf_counter() - start)
    telemetry.counter("sim.batches").inc()
    telemetry.counter("sim.trajectories").inc(batch)
    telemetry.counter("sim.kicks").inc(kicks)

    if plan.mode == "stabilizer":
        fidelities, success = plan.scorer.score(frame_x, frame_z)
        ideal_success = plan.scorer.ideal_success
    elif plan.mode == "sparse":
        telemetry.histogram("sim.nnz_peak").observe(nnz_peak)
        if spilled:
            telemetry.counter("sim.sparse_spills").inc()
            fidelities, success = plan.sparse_scorer.score_dense(sparse_states)
        else:
            keys, amps = sparse_states
            fidelities, success = plan.sparse_scorer.score(keys, amps, batch)
        ideal_success = plan.sparse_scorer.ideal_success
    else:
        ideal_state = plan.ideal_state
        fidelities = np.abs(states @ ideal_state.conj()) ** 2
        dominant = int(np.argmax(np.abs(ideal_state) ** 2))
        success = np.abs(states[:, dominant]) ** 2
        ideal_success = float(np.abs(ideal_state[dominant]) ** 2)
    return TrajectoryResult(
        num_qubits=plan.num_qubits,
        fidelities=tuple(float(f) for f in fidelities),
        success_probs=tuple(float(p) for p in success),
        ideal_success=ideal_success,
        kicks=kicks,
        nnz_peak=nnz_peak,
    )


def batch_sizes(num_trajectories: int, batch_size: int) -> List[int]:
    """Deterministic partition of a trajectory count into batch sizes."""
    if num_trajectories < 1:
        raise ValueError("num_trajectories must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    full, rest = divmod(num_trajectories, batch_size)
    return [batch_size] * full + ([rest] if rest else [])


def trajectory_batch_payloads(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    num_trajectories: int,
    seed: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    mode: str = "auto",
) -> List[Tuple[TrajectoryPlan, int, np.random.SeedSequence]]:
    """The seeded per-batch work items of one trajectory run.

    This is the single source of the fusion + seeding scheme: the serial
    driver (:func:`simulate_trajectories`) and the pooled engine
    (:func:`repro.simulation.engine.run_trajectories`) both execute exactly
    these payloads in order, which is what makes their results bit-identical.
    Every payload shares one :class:`TrajectoryPlan` object, so the engine
    can ship its large arrays to pool workers once (via shared memory)
    instead of once per batch.
    """
    plan = build_trajectory_plan(circuit, noise, mode=mode)
    sizes = batch_sizes(num_trajectories, batch_size)
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    return [(plan, size, child) for size, child in zip(sizes, children)]


def noisy_trajectory_states(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    num_trajectories: int,
    seed: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> np.ndarray:
    """Final statevectors of seeded noisy trajectories, one row per trajectory.

    Shares the exact fusion + seeding + kick-draw scheme of
    :func:`simulate_trajectories`, so for a given ``(seed, num_trajectories,
    batch_size)`` triple the trajectory ``t`` returned here is the *same*
    noisy evolution that :func:`simulate_trajectories` scored — an
    expectation value averaged over these states is statistically consistent
    with the fidelity columns the runtime reports for the same job.

    Returns a dense ``(num_trajectories, 2**n)`` array; callers are expected
    to respect the statevector simulator's small-circuit limits.  The
    statevector kernel is forced even for Clifford circuits, because the
    caller wants the raw vectors.
    """
    batches = [
        advance_noisy_batch(
            plan.ops, plan.num_qubits, size,
            np.random.default_rng(child), plan.kick_cumweights,
        )[0]
        for plan, size, child in trajectory_batch_payloads(
            circuit, noise, num_trajectories,
            seed=seed, batch_size=batch_size, mode="statevector",
        )
    ]
    return np.concatenate(batches, axis=0)


def simulate_trajectories(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    num_trajectories: int,
    seed: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    mode: str = "auto",
) -> TrajectoryResult:
    """Run seeded Monte-Carlo trajectories of a circuit, serially.

    Results are identical to :func:`repro.simulation.engine.run_trajectories`
    with any worker count, because both execute the payloads of
    :func:`trajectory_batch_payloads` and concatenate batches in order.
    """
    parts = [
        run_trajectory_batch(plan, size, np.random.default_rng(child))
        for plan, size, child in trajectory_batch_payloads(
            circuit, noise, num_trajectories,
            seed=seed, batch_size=batch_size, mode=mode,
        )
    ]
    return TrajectoryResult.merge(parts)

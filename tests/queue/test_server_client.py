"""Tests for the HTTP daemon and QueueClient/RemoteJobHandle contract."""

import json
import threading
from concurrent.futures import CancelledError

import pytest

from repro.queue.client import QueueClient, QueueServerError, discover_url
from repro.queue.scheduler import QueueService
from repro.queue.server import QueueHTTPServer
from repro.queue.store import QueueStore
from repro.runtime.jobs import job_key
from repro.runtime.spec import ExperimentSpec
from repro.runtime.store import ResultStore, canonical_json


def make_spec(seed=0, **overrides):
    defaults = dict(benchmark="bv", num_qubits=5, seed=seed)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture
def daemon(tmp_path):
    """An in-thread daemon executing real specs; yields (client, service)."""
    service = QueueService(
        QueueStore(tmp_path / "queue"),
        ResultStore(tmp_path / "cache"),
        max_workers=2,
    )
    httpd = QueueHTTPServer(("127.0.0.1", 0), service)
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    threads = [
        threading.Thread(target=httpd.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True),
        threading.Thread(target=service.serve_loop, kwargs={"poll_interval_s": 0.05}, daemon=True),
    ]
    for thread in threads:
        thread.start()
    try:
        yield QueueClient(url=url), service
    finally:
        service.stop()
        httpd.shutdown()
        httpd.server_close()
        for thread in threads:
            thread.join(timeout=10.0)


class TestRoundTrip:
    def test_submit_poll_collect(self, daemon):
        client, service = daemon
        spec = make_spec()
        handle = client.submit(spec, priority="interactive", session="alice")
        result = handle.result(timeout=60.0)
        assert result.key == job_key(spec)
        assert handle.status().value == "done"
        assert handle.done() and not handle.cancelled()
        # the daemon's row is byte-identical to a local execution of the spec
        from repro.runtime.jobs import execute_spec

        local = execute_spec(spec)
        assert canonical_json(result.row) == canonical_json(local.row)

    def test_reattach_from_another_client(self, daemon):
        client, _ = daemon
        submitted = client.submit(make_spec(seed=1))
        other = QueueClient(url=client.url)  # a second "process"
        result = other.handle(submitted.job_id).result(timeout=60.0)
        assert result.key == job_key(make_spec(seed=1))

    def test_repeat_submission_hits_result_cache(self, daemon):
        client, _ = daemon
        spec = make_spec(seed=2)
        client.submit(spec).result(timeout=60.0)
        again = client.submit(spec)
        assert again.result(timeout=60.0).key == job_key(spec)
        stats = client.stats()
        assert stats["cache_hits"] >= 1

    def test_stats_and_queue_accounting(self, daemon):
        client, service = daemon
        client.submit(make_spec(seed=3)).result(timeout=60.0)
        http_stats = client.stats()
        assert http_stats["depths"]["done"] >= 1
        assert http_stats == json.loads(
            json.dumps(service.stats(), sort_keys=True)
        )  # the endpoint serves exactly the service's accounting


class TestCancellation:
    def test_cancel_parked_job_raises_cleanly(self, daemon):
        client, service = daemon
        # price the job over the budget so it parks in 'queued' forever
        wide = make_spec(backend="cryo-cmos-grid", num_qubits=1000)
        handle = client.submit(wide, priority="deferrable")
        assert handle.job.power_w > service.budget.power_w
        assert handle.cancel() is True
        assert handle.cancel() is True  # idempotent
        assert handle.status().value == "cancelled"
        with pytest.raises(CancelledError):
            handle.result(timeout=5.0)

    def test_cancel_done_job_fails(self, daemon):
        client, _ = daemon
        handle = client.submit(make_spec(seed=4))
        handle.result(timeout=60.0)
        assert handle.cancel() is False


class TestErrors:
    def test_unknown_job_and_endpoint(self, daemon):
        client, _ = daemon
        with pytest.raises(QueueServerError, match="unknown job"):
            client.job("nope")
        with pytest.raises(QueueServerError, match="no such endpoint"):
            client._expect(*client._request("GET", "/bogus"), 200)

    def test_bad_submission_rejected(self, daemon):
        client, _ = daemon
        code, payload = client._request("POST", "/jobs", {"spec": {"benchmark": "nope"}})
        assert code == 400 and "error" in payload
        code, payload = client._request("POST", "/jobs", {})
        assert code == 400

    def test_result_pending_is_202(self, daemon):
        client, service = daemon
        wide = make_spec(backend="cryo-cmos-grid", num_qubits=1000)
        handle = client.submit(wide, priority="deferrable")
        assert client.result_row(handle.job_id) is None  # parked: still pending
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.2)
        handle.cancel()

    def test_discover_url_without_daemon(self, tmp_path):
        with pytest.raises(QueueServerError, match="no live repro serve daemon"):
            discover_url(tmp_path / "empty")

    def test_unreachable_url(self):
        client = QueueClient(url="http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(QueueServerError, match="cannot reach"):
            client.stats()


class TestSessionQueuePath:
    def test_session_queue_results_byte_identical(self, daemon, tmp_path):
        from repro.primitives.session import Session

        client, _ = daemon
        spec = make_spec(seed=5)
        remote = Session(spec.backend, queue=client)
        local = Session(spec.backend, store=ResultStore(tmp_path / "local"))
        try:
            remote_result, cached = remote.execute(spec)
            assert cached is False
            local_result, _ = local.execute(spec)
            assert remote_result.key == local_result.key
            assert canonical_json(remote_result.row) == canonical_json(local_result.row)
            # second execute is a session-memory hit, no daemon traffic
            again, cached = remote.execute(spec)
            assert cached is True
        finally:
            remote.close()
            local.close()

    def test_sampler_queue_kwarg(self, daemon):
        from repro.primitives.sampler import Sampler

        client, _ = daemon
        sampler = Sampler("digiq-opt8", queue=client)
        assert sampler.session.queue is client
        result = sampler.run("bv", shots=64, num_qubits=5, seed=6).result()
        assert result.entries[0].counts
        sampler.session.close()

    def test_estimator_queue_kwarg(self, daemon):
        from repro.primitives.estimator import Estimator

        client, _ = daemon
        estimator = Estimator("digiq-opt8", queue=client)
        assert estimator.session.queue is client
        estimator.session.close()

    def test_queue_url_string_resolution(self, daemon):
        from repro.primitives.session import Session

        client, _ = daemon
        session = Session("digiq-opt8", queue=client.url)
        assert session.queue.url == client.url
        session.close()
        assert Session("digiq-opt8").queue is None

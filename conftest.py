"""Pytest bootstrap: make the src/ layout importable without installation.

The canonical workflow is ``pip install -e .``; this file only exists so that
``pytest`` also works in fully offline environments where the ``wheel``
package needed for PEP 660 editable installs is unavailable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

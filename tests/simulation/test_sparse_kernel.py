"""Tests of the sparse low-entanglement trajectory kernel.

The sparse kernel's contract is amplitude-for-amplitude equality with the
dense statevector kernel under the identical kick-draw stream.  Hypothesis
cross-checks random noisy circuits against :func:`advance_noisy_batch`;
unit tests pin each op kind, the static nonzero bound, the kick stream, the
scorer, and the 28-qubit past-the-dense-ceiling path.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.benchmarks import ghz_phase_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.simulation import NoiseModel
from repro.simulation.sparse import (
    SPARSE_NNZ_CAP,
    apply_sparse_op,
    advance_sparse_batch,
    build_sparse_scorer,
    compile_sparse_program,
    estimate_nnz_bound,
    sparse_auto_budget,
    sparse_to_dense,
)
from repro.simulation.trajectories import (
    advance_noisy_batch,
    build_trajectory_plan,
    fuse_circuit,
    run_trajectory_batch,
)

ONE_QUBIT = [("h", 0), ("x", 0), ("y", 0), ("z", 0), ("s", 0), ("t", 0),
             ("sx", 0), ("rx", 1), ("ry", 1), ("rz", 1), ("p", 1)]
TWO_QUBIT = [("cx", 0), ("cz", 0), ("swap", 0), ("cp", 1), ("rzz", 1)]

angles = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi,
                   allow_nan=False, allow_infinity=False)


@st.composite
def noisy_cases(draw, max_qubits=12, max_gates=25):
    """A random circuit plus noise rates, batch size, and trajectory seed."""
    num_qubits = draw(st.integers(1, max_qubits))
    circuit = QuantumCircuit(num_qubits)
    pools = ONE_QUBIT + (TWO_QUBIT if num_qubits >= 2 else [])
    for _ in range(draw(st.integers(1, max_gates))):
        name, num_params = draw(st.sampled_from(pools))
        arity = 2 if (name, num_params) in TWO_QUBIT else 1
        qubits = draw(
            st.lists(st.integers(0, num_qubits - 1), min_size=arity,
                     max_size=arity, unique=True)
        )
        params = tuple(draw(angles) for _ in range(num_params))
        circuit.add(name, qubits, params)
    single = draw(st.floats(0.0, 0.2))
    cz = draw(st.floats(0.0, 0.3))
    batch = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    return circuit, single, cz, batch, seed


def sparse_setup(circuit, single, cz):
    noise = NoiseModel.uniform(circuit.num_qubits, single, cz)
    ops = tuple(fuse_circuit(circuit, noise))
    program = compile_sparse_program(ops, circuit.num_qubits)
    return ops, program, noise.kick_cumulative_weights()


def assert_matches_dense(circuit, single, cz, batch, seed):
    """Sparse and dense kernels agree amplitude for amplitude."""
    n = circuit.num_qubits
    ops, program, cumweights = sparse_setup(circuit, single, cz)
    rng_sparse = np.random.default_rng(seed)
    states, kicks, nnz_peak, spilled = advance_sparse_batch(
        program, batch, rng_sparse, cumweights, spill_nnz=1 << n
    )
    assert not spilled
    keys, amps = states
    got = sparse_to_dense(keys, amps, n, batch)
    rng_dense = np.random.default_rng(seed)
    want, kicks_want = advance_noisy_batch(ops, n, batch, rng_dense, cumweights)
    assert kicks == kicks_want
    # Identical draw-stream positions: later consumers see the same stream.
    assert rng_sparse.bit_generator.state == rng_dense.bit_generator.state
    assert np.allclose(got, want, rtol=0, atol=1e-12)
    assert nnz_peak <= 1 << n


class TestDenseEquivalence:
    @given(noisy_cases())
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_kernel(self, case):
        assert_matches_dense(*case)

    @pytest.mark.slow
    @given(noisy_cases(max_qubits=12, max_gates=60))
    @settings(max_examples=300, deadline=None)
    def test_matches_dense_kernel_exhaustive(self, case):
        assert_matches_dense(*case)

    def test_scoring_matches_statevector_plan(self):
        master = np.random.default_rng(11)
        for _ in range(6):
            n = int(master.integers(2, 6))
            circuit = QuantumCircuit(n)
            for _ in range(15):
                name, num_params = (
                    TWO_QUBIT[int(master.integers(len(TWO_QUBIT)))]
                    if master.random() < 0.4
                    else ONE_QUBIT[int(master.integers(len(ONE_QUBIT)))]
                )
                arity = 2 if (name, num_params) in TWO_QUBIT else 1
                qubits = master.choice(n, size=arity, replace=False).tolist()
                params = tuple(
                    float(master.uniform(-np.pi, np.pi)) for _ in range(num_params)
                )
                circuit.add(name, qubits, params)
            noise = NoiseModel.uniform(n, 0.05, 0.1)
            seed = int(master.integers(2**31))
            sparse_plan = build_trajectory_plan(circuit, noise, mode="sparse")
            dense_plan = build_trajectory_plan(circuit, noise, mode="statevector")
            got = run_trajectory_batch(sparse_plan, 5, np.random.default_rng(seed))
            want = run_trajectory_batch(dense_plan, 5, np.random.default_rng(seed))
            assert got.kicks == want.kicks
            assert got.ideal_success == pytest.approx(want.ideal_success, abs=1e-12)
            assert got.fidelities == pytest.approx(want.fidelities, abs=1e-12)
            assert got.success_probs == pytest.approx(want.success_probs, abs=1e-12)


class TestOpKinds:
    def run_noiseless(self, circuit, batch=3):
        ops, program, cumweights = sparse_setup(circuit, 0.0, 0.0)
        (keys, amps), kicks, _, spilled = advance_sparse_batch(
            program, batch, np.random.default_rng(0), cumweights,
            spill_nnz=1 << circuit.num_qubits,
        )
        assert kicks == 0 and not spilled
        return keys, amps, sparse_to_dense(keys, amps, circuit.num_qubits, batch)

    def test_perm_diag_circuit_is_exact(self):
        """Permutation/diagonal ops move amplitudes bitwise untouched."""
        circuit = QuantumCircuit(4)
        circuit.x(0).cx(0, 1).swap(1, 2).cz(2, 3).s(3).t(0).rz(0.37, 1).z(2)
        ops, program, cumweights = sparse_setup(circuit, 0.0, 0.0)
        keys, amps, got = self.run_noiseless(circuit)
        assert keys.size == 3  # one amplitude per trajectory, support never grew
        want, _ = advance_noisy_batch(ops, 4, 3, np.random.default_rng(0), cumweights)
        assert np.array_equal(got, want)

    def test_dense1_pairs_and_prunes(self):
        """H branches the support; a later H cancels it back to one amplitude.

        The intervening CX pair keeps the two H's in separate fused ops
        (adjacent single-qubit gates would fuse into one near-identity) while
        contributing only an identity permutation overall.
        """
        circuit = QuantumCircuit(3)
        circuit.h(1)
        keys, _, _ = self.run_noiseless(circuit, batch=2)
        assert keys.size == 4
        circuit.cx(1, 0).cx(1, 0).h(1)
        keys, amps, _ = self.run_noiseless(circuit, batch=2)
        assert keys.size == 2  # the 0.5 - 0.5 branch cancelled to an exact zero
        assert np.allclose(np.abs(amps), 1.0, atol=1e-12)

    def test_dense_two_qubit_groups_by_untouched_bits(self):
        """A generic 4x4 unitary (no library gate produces one — every
        two-qubit library gate is diag or perm — so build the op by hand)
        matches ``apply_matrix`` on a random sparse state."""
        from repro.circuits.simulator import apply_matrix
        from repro.simulation.sparse import SparseOp

        rng = np.random.default_rng(3)
        raw = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        unitary, _ = np.linalg.qr(raw)
        for targets in ((0, 2), (2, 1)):
            patterns = np.zeros(4, dtype=np.int64)
            for slot, target in enumerate(targets):
                patterns |= ((np.arange(4, dtype=np.int64) >> slot) & 1) << target
            op = SparseOp("dense", unitary, targets, (), patterns=patterns)
            n = 3
            dense = np.zeros((1, 1 << n), dtype=complex)
            occupied = np.array([0, 3, 5], dtype=np.int64)
            values = rng.standard_normal(3) + 1j * rng.standard_normal(3)
            dense[0, occupied] = values
            keys, amps = apply_sparse_op(occupied.copy(), values.copy(), op)
            got = sparse_to_dense(keys, amps, n, 1)
            want = apply_matrix(dense, unitary, targets, n)
            assert np.allclose(got, want, rtol=0, atol=1e-12)

    def test_apply_sparse_op_keeps_keys_sorted(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        _, program, _ = sparse_setup(circuit, 0.0, 0.0)
        keys = np.zeros(1, dtype=np.int64)
        amps = np.ones(1, dtype=complex)
        for op in program.ops:
            keys, amps = apply_sparse_op(keys, amps, op)
            assert np.all(np.diff(keys) > 0)


class TestKicks:
    def test_kick_stream_position_is_hit_independent(self):
        """Quiet and loud noise consume identical per-site draw counts."""
        circuit = ghz_phase_circuit(num_qubits=5, num_layers=2, seed=3)
        for single, cz in ((1e-12, 1e-12), (0.4, 0.4)):
            ops, program, cumweights = sparse_setup(circuit, single, cz)
            rng = np.random.default_rng(9)
            advance_sparse_batch(program, 4, rng, cumweights, spill_nnz=32)
            if single < 1e-6:
                quiet_state = rng.bit_generator.state
            else:
                assert rng.bit_generator.state == quiet_state

    def test_high_noise_still_matches_dense(self):
        circuit = ghz_phase_circuit(num_qubits=6, num_layers=3, seed=5)
        assert_matches_dense(circuit, 0.35, 0.5, 6, 12345)


class TestNnzBound:
    def test_diag_perm_ops_do_not_grow_bound(self):
        circuit = QuantumCircuit(5)
        circuit.x(0).cx(0, 1).cz(1, 2).rz(0.3, 3).swap(3, 4).t(2)
        ops = tuple(fuse_circuit(circuit, NoiseModel.uniform(5)))
        assert estimate_nnz_bound(ops, 5) == 1

    def test_each_branching_qubit_doubles_the_bound(self):
        for h_count in (1, 2, 3):
            circuit = QuantumCircuit(6)
            for q in range(h_count):
                circuit.h(q)
            ops = tuple(fuse_circuit(circuit, NoiseModel.uniform(6)))
            assert estimate_nnz_bound(ops, 6) == 1 << h_count

    def test_bound_caps_at_full_hilbert_space(self):
        circuit = QuantumCircuit(3)
        for _ in range(4):
            for q in range(3):
                circuit.h(q)
        ops = tuple(fuse_circuit(circuit, NoiseModel.uniform(3)))
        assert estimate_nnz_bound(ops, 3) == 8

    def test_bound_is_a_true_ceiling_at_runtime(self):
        """Observed nnz_peak never exceeds the compiled static bound."""
        master = np.random.default_rng(21)
        for _ in range(10):
            case_rng = np.random.default_rng(int(master.integers(2**31)))
            circuit = QuantumCircuit(5)
            for _ in range(12):
                roll = case_rng.random()
                if roll < 0.3:
                    circuit.h(int(case_rng.integers(5)))
                elif roll < 0.6:
                    qubits = case_rng.choice(5, size=2, replace=False).tolist()
                    circuit.cx(qubits[0], qubits[1])
                else:
                    circuit.rz(float(case_rng.uniform(0, np.pi)), int(case_rng.integers(5)))
            ops, program, cumweights = sparse_setup(circuit, 0.1, 0.2)
            _, _, nnz_peak, spilled = advance_sparse_batch(
                program, 5, np.random.default_rng(1), cumweights, spill_nnz=32
            )
            if not spilled:
                assert nnz_peak <= program.nnz_bound

    def test_auto_budget_shape(self):
        assert sparse_auto_budget(5) == 0  # 32 // 64: sparse can't win tiny registers
        assert sparse_auto_budget(12) == 64
        assert sparse_auto_budget(30) == SPARSE_NNZ_CAP  # absolute cap dominates


class TestGuards:
    def test_too_many_qubits_for_int64_keys(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        ops = tuple(fuse_circuit(circuit, NoiseModel.uniform(2)))
        with pytest.raises(ValueError, match="62"):
            compile_sparse_program(ops, 63)

    def test_batch_qubit_fold_overflow(self):
        circuit = ghz_phase_circuit(num_qubits=40, num_layers=1)
        ops, program, cumweights = sparse_setup(circuit, 0.0, 0.0)
        with pytest.raises(ValueError, match="fold"):
            advance_sparse_batch(
                program, 1 << 23, np.random.default_rng(0), cumweights, spill_nnz=4
            )

    def test_batch_must_be_positive(self):
        circuit = ghz_phase_circuit(num_qubits=4, num_layers=1)
        _, program, cumweights = sparse_setup(circuit, 0.0, 0.0)
        with pytest.raises(ValueError, match="batch"):
            advance_sparse_batch(program, 0, np.random.default_rng(0), cumweights, 4)


class TestScorer:
    def test_sparse_and_dense_scoring_paths_agree(self):
        circuit = ghz_phase_circuit(num_qubits=6, num_layers=2, seed=1)
        ops, program, cumweights = sparse_setup(circuit, 0.1, 0.2)
        scorer = build_sparse_scorer(program)
        (keys, amps), _, _, _ = advance_sparse_batch(
            program, 5, np.random.default_rng(7), cumweights, spill_nnz=64
        )
        fid_sparse, suc_sparse = scorer.score(keys, amps, 5)
        dense = sparse_to_dense(keys, amps, 6, 5)
        fid_dense, suc_dense = scorer.score_dense(dense)
        assert np.allclose(fid_sparse, fid_dense, atol=1e-12)
        assert np.allclose(suc_sparse, suc_dense, atol=1e-12)

    def test_ghz_ideal_support_is_two(self):
        circuit = ghz_phase_circuit(num_qubits=30, num_layers=3, seed=2)
        _, program, _ = sparse_setup(circuit, 0.0, 0.0)
        scorer = build_sparse_scorer(program)
        assert scorer.indices.size == 2
        assert scorer.ideal_success == pytest.approx(0.5, abs=1e-12)


class TestPastDenseCeiling:
    def test_28_qubit_ghz_runs_to_completion(self):
        """The acceptance workload: 28 qubits, far past the dense kernel."""
        circuit = ghz_phase_circuit(num_qubits=28, num_layers=3, seed=0)
        noise = NoiseModel.uniform(28, 1e-3, 1e-2)
        plan = build_trajectory_plan(circuit, noise, mode="auto")
        assert plan.mode == "sparse"
        result = run_trajectory_batch(plan, 25, np.random.default_rng(0))
        assert result.num_trajectories == 25
        assert result.nnz_peak == 2
        assert all(0.0 <= f <= 1.0 + 1e-9 for f in result.fidelities)

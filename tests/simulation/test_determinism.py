"""Seed-determinism guarantees: identical seeds must give identical results,
serially and across ProcessPoolExecutor workers."""

import numpy as np

from repro.circuits.benchmarks import build_benchmark
from repro.circuits.simulator import sample_counts, simulate
from repro.noise.variability import VariabilityModel
from repro.simulation import NoiseModel, run_trajectories


def _bv():
    return build_benchmark("bv", num_qubits=6, seed=3)


class TestSampleCountsDeterminism:
    def test_identical_seeds_identical_counts(self):
        state = simulate(_bv())
        assert sample_counts(state, shots=200, seed=42) == sample_counts(
            state, shots=200, seed=42
        )

    def test_different_seeds_may_differ(self):
        circuit = build_benchmark("ising", num_qubits=6)
        state = simulate(circuit)
        counts = [sample_counts(state, shots=50, seed=s) for s in range(5)]
        assert any(counts[0] != other for other in counts[1:])


class TestVariabilityDeterminism:
    def test_sample_qubits_identical_for_identical_seeds(self):
        frequencies = [6.21286, 4.14238, 5.02978, 6.21286]
        samples_a = VariabilityModel(seed=9).sample_qubits(frequencies)
        samples_b = VariabilityModel(seed=9).sample_qubits(frequencies)
        assert samples_a == samples_b

    def test_sample_error_scales_identical_for_identical_seeds(self):
        scales_a = VariabilityModel(seed=4).sample_error_scales(10)
        scales_b = VariabilityModel(seed=4).sample_error_scales(10)
        assert np.array_equal(scales_a, scales_b)
        assert np.all(scales_a > 0)

    def test_streams_advance(self):
        model = VariabilityModel(seed=4)
        first = model.sample_error_scales(5)
        second = model.sample_error_scales(5)
        assert not np.array_equal(first, second)


class TestTrajectoryDeterminism:
    def test_identical_seeds_identical_results(self):
        circuit = _bv()
        noise = NoiseModel.uniform(circuit.num_qubits, 0.02, 0.05)
        result_a = run_trajectories(circuit, noise, 40, seed=13, batch_size=16)
        result_b = run_trajectories(circuit, noise, 40, seed=13, batch_size=16)
        assert result_a == result_b

    def test_different_seeds_differ(self):
        circuit = _bv()
        noise = NoiseModel.uniform(circuit.num_qubits, 0.05, 0.1)
        result_a = run_trajectories(circuit, noise, 40, seed=1)
        result_b = run_trajectories(circuit, noise, 40, seed=2)
        assert result_a.fidelities != result_b.fidelities

    def test_parallel_workers_match_serial_exactly(self):
        """The headline guarantee: ProcessPoolExecutor runs are bit-identical
        to serial runs for the same (seed, trajectories, batch_size)."""
        circuit = _bv()
        noise = NoiseModel.uniform(circuit.num_qubits, 0.02, 0.05)
        serial = run_trajectories(circuit, noise, 48, seed=7, batch_size=12, workers=1)
        parallel = run_trajectories(circuit, noise, 48, seed=7, batch_size=12, workers=2)
        assert serial == parallel

    def test_uneven_final_batch_is_handled(self):
        circuit = _bv()
        noise = NoiseModel.uniform(circuit.num_qubits, 0.02, 0.05)
        result = run_trajectories(circuit, noise, 10, seed=3, batch_size=4)
        assert result.num_trajectories == 10

"""The Estimator primitive: expectation values of Pauli observables.

``Estimator.run`` pairs circuits with
:class:`~repro.primitives.observables.PauliObservable` s and resolves to an
:class:`~repro.primitives.results.EstimatorResult` of expectation values,
computed on the *compiled physical circuit* (observable qubits are mapped
through the final layout, so the estimate includes everything compilation
did to the circuit) by one of two methods:

* ``"exact"`` — one dense statevector simulation of the compiled circuit;
  the value equals the ideal ``<psi|O|psi>`` of the source circuit to
  numerical precision, because compilation preserves the logical state.
* ``"trajectories"`` — the mean over seeded noisy Monte-Carlo trajectories
  under the backend's noise model
  (:func:`repro.simulation.trajectories.noisy_trajectory_states`, the same
  kick scheme the fidelity sweeps use), with a standard error of the mean.

Each estimate reuses the session's memoized compilation and records the
underlying timing job, so estimator traffic shares compile work and cache
entries with samplers and sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backends import Backend
from ..circuits.circuit import QuantumCircuit
from ..circuits.simulator import simulate
from ..runtime.spec import CompileOptions, ExperimentSpec, FidelityOptions
from ..runtime.store import ResultStore
from ..simulation.trajectories import noisy_trajectory_states
from .job import JobHandle
from .observables import PauliObservable
from .results import CircuitExecution, EstimateData, EstimatorResult
from .session import CircuitLike, Session

#: Valid estimation methods.
ESTIMATOR_METHODS = ("exact", "trajectories")

#: Largest physical register the exact method will simulate densely.
MAX_EXACT_QUBITS = 20

ObservableLike = Union[PauliObservable, str]


def _resolve_observable(observable: ObservableLike) -> PauliObservable:
    if isinstance(observable, PauliObservable):
        return observable
    return PauliObservable.from_label(observable)


class Estimator:
    """Expectation-value primitive over one backend or session.

    Parameters
    ----------
    backend:
        A :class:`~repro.primitives.session.Session` to share, or a backend /
        backend name to wrap in a private session (same convention as
        :class:`~repro.primitives.sampler.Sampler`).
    store:
        Result store for the private session (ignored when an existing
        session is passed).
    queue:
        Submission path for the private session's cache misses: a
        :class:`~repro.queue.client.QueueClient`, a ``repro serve`` URL, or
        ``True`` for daemon discovery (ignored when an existing session is
        passed).  Results stay byte-identical to local execution.
    """

    def __init__(
        self,
        backend: Union[Session, Backend, str],
        store: Optional[ResultStore] = None,
        queue=None,
    ):
        if isinstance(backend, Session):
            self.session = backend
            self._private_session = False
        else:
            self.session = Session(backend, store=store, queue=queue)
            self._private_session = True

    # -- pairing --------------------------------------------------------------------

    def _pairs(
        self,
        circuits: Union[CircuitLike, Sequence[CircuitLike]],
        observables: Union[ObservableLike, Sequence[ObservableLike]],
        num_qubits: int,
        seed: int,
        compile_options: Optional[CompileOptions],
    ) -> List[Tuple[ExperimentSpec, PauliObservable]]:
        """Broadcast circuits against observables into (spec, observable) pairs.

        One circuit pairs with every observable; otherwise the sequences must
        have equal length and are zipped positionally.
        """
        if isinstance(observables, (PauliObservable, str)):
            observables = [observables]
        resolved = [_resolve_observable(observable) for observable in observables]
        if not resolved:
            raise ValueError("an estimation needs at least one observable")
        single_circuit = isinstance(circuits, (QuantumCircuit, str))
        specs = self.session.make_specs(
            circuits, num_qubits=num_qubits, seed=seed, compile_options=compile_options
        )
        if single_circuit:
            pairs = [(specs[0], observable) for observable in resolved]
        elif len(specs) == len(resolved):
            pairs = list(zip(specs, resolved))
        else:
            raise ValueError(
                f"cannot broadcast {len(specs)} circuits against "
                f"{len(resolved)} observables; pass one circuit or equal-length lists"
            )
        for spec, observable in pairs:
            width = spec.source_circuit().num_qubits
            if observable.num_qubits != width:
                raise ValueError(
                    f"observable '{observable.label}' addresses "
                    f"{observable.num_qubits} qubits but circuit "
                    f"'{spec.benchmark}' has {width}"
                )
        return pairs

    # -- estimation -----------------------------------------------------------------

    def _estimate(
        self,
        spec: ExperimentSpec,
        observable: PauliObservable,
        method: str,
        fidelity: FidelityOptions,
    ) -> EstimateData:
        result, cached = self.session.execute(spec)
        compiled = self.session.compiled_for(spec)
        num_physical = compiled.coupling.num_qubits
        qubit_map = [
            compiled.final_layout.physical(logical)
            for logical in range(compiled.source.num_qubits)
        ]
        execution = CircuitExecution(
            label=spec.benchmark,
            job_key=result.key,
            backend=self.session.backend.name,
            row=dict(result.row),
            trace=result.trace,
            elapsed_s=0.0 if cached else result.elapsed_s,
            cached=cached,
        )
        if method == "exact":
            if num_physical > MAX_EXACT_QUBITS:
                raise ValueError(
                    f"exact estimation simulates all {num_physical} physical "
                    f"qubits; refusing beyond {MAX_EXACT_QUBITS}"
                )
            state = simulate(compiled.physical_circuit)
            value = float(
                observable.expectation(state, num_qubits=num_physical, qubit_map=qubit_map)
            )
            return EstimateData(
                observable=observable.label,
                value=value,
                method=method,
                std_error=0.0,
                trajectories=0,
                execution=execution,
            )
        if num_physical > fidelity.max_qubits:
            raise ValueError(
                f"trajectory estimation simulates all {num_physical} physical "
                f"qubits; raise fidelity_options.max_qubits (currently "
                f"{fidelity.max_qubits}) or use method='exact'"
            )
        noise = spec.backend.noise_model(
            num_physical,
            couplers=sorted(compiled.physical_circuit.two_qubit_pairs()),
            seed=fidelity.noise_seed,
        )
        states = noisy_trajectory_states(
            compiled.physical_circuit,
            noise,
            num_trajectories=fidelity.trajectories,
            seed=spec.seed,
            batch_size=fidelity.batch_size,
        )
        values = observable.expectation(states, num_qubits=num_physical, qubit_map=qubit_map)
        count = len(values)
        std_error = (
            float(np.std(values, ddof=1) / np.sqrt(count)) if count > 1 else 0.0
        )
        return EstimateData(
            observable=observable.label,
            value=float(np.mean(values)),
            method=method,
            std_error=std_error,
            trajectories=count,
            execution=execution,
        )

    def run(
        self,
        circuits: Union[CircuitLike, Sequence[CircuitLike]],
        observables: Union[ObservableLike, Sequence[ObservableLike]],
        method: str = "exact",
        num_qubits: int = 16,
        seed: int = 0,
        compile_options: Optional[CompileOptions] = None,
        fidelity_options: Optional[FidelityOptions] = None,
        lazy: Optional[bool] = None,
    ) -> JobHandle:
        """Estimate observables; resolves to an :class:`EstimatorResult`.

        ``circuits`` broadcasts against ``observables`` (one circuit x many
        observables, or equal-length lists).  ``method`` is ``"exact"``
        (noiseless statevector) or ``"trajectories"`` (noisy Monte-Carlo
        mean under the backend's noise model, parameterised by
        ``fidelity_options``).  ``lazy`` follows the Sampler convention.
        """
        if method not in ESTIMATOR_METHODS:
            raise ValueError(
                f"unknown estimation method '{method}'; known: {ESTIMATOR_METHODS}"
            )
        fidelity = fidelity_options if fidelity_options is not None else FidelityOptions()
        lazy = self._private_session if lazy is None else lazy
        pairs = self._pairs(circuits, observables, num_qubits, seed, compile_options)

        def work() -> EstimatorResult:
            entries = []
            keys = []
            cached_count = 0
            elapsed = 0.0
            for spec, observable in pairs:
                estimate = self._estimate(spec, observable, method, fidelity)
                entries.append(estimate)
                keys.append(estimate.execution.job_key)
                cached_count += int(estimate.execution.cached)
                elapsed += estimate.execution.elapsed_s
            return EstimatorResult(
                entries=tuple(entries),
                metadata={
                    "backend": self.session.backend.name,
                    "job_keys": keys,
                    "elapsed_s": round(elapsed, 6),
                    "cached": cached_count,
                    "method": method,
                },
            )

        executor = None if lazy else self.session._ensure_executor()
        return JobHandle(work, backend_name=self.session.backend.name, executor=executor)

"""Unit and property tests for repro.physics.fidelity."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.fidelity import (
    average_gate_error,
    average_gate_fidelity,
    leakage,
    leakage_projected_error,
    leakage_projected_fidelity,
    phase_corrected_two_qubit_error,
    state_fidelity,
)
from repro.physics.operators import PAULI_X, embed_qubit_operator
from repro.physics.rotations import rx, rz, u3

angles = st.floats(-math.pi, math.pi, allow_nan=False)


class TestAverageGateFidelity:
    def test_identical_gate_has_unit_fidelity(self):
        gate = u3(0.7, 0.2, 1.1)
        assert np.isclose(average_gate_fidelity(gate, gate), 1.0)

    def test_global_phase_invariance(self):
        gate = rx(0.3)
        assert np.isclose(average_gate_fidelity(np.exp(1j * 0.9) * gate, gate), 1.0)

    def test_orthogonal_gates(self):
        # X vs I: F = (0 + 2) / 6 = 1/3.
        assert np.isclose(average_gate_fidelity(PAULI_X, np.eye(2)), 1.0 / 3.0)

    def test_small_rotation_error_quadratic(self):
        delta = 1e-3
        error = average_gate_error(rz(delta), np.eye(2))
        assert np.isclose(error, delta**2 / 6.0, rtol=1e-3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_gate_fidelity(np.eye(2), np.eye(4))

    @given(angles, angles, angles)
    @settings(max_examples=50, deadline=None)
    def test_fidelity_bounded(self, theta, phi, lam):
        value = average_gate_fidelity(u3(theta, phi, lam), np.eye(2))
        assert 0.0 <= value <= 1.0


class TestLeakage:
    def test_unitary_on_subspace_has_no_leakage(self):
        full = embed_qubit_operator(rx(0.4), 6)
        assert leakage(full) < 1e-12
        assert np.isclose(leakage_projected_fidelity(full, rx(0.4)), 1.0)

    def test_swap_to_third_level_counts_as_leakage(self):
        # A unitary moving |1> -> |2> entirely leaks half the subspace.
        full = np.eye(4, dtype=complex)
        full[1, 1] = 0.0
        full[2, 2] = 0.0
        full[1, 2] = 1.0
        full[2, 1] = 1.0
        assert np.isclose(leakage(full), 0.5)
        assert leakage_projected_error(full, np.eye(2)) > 0.3


class TestStateFidelity:
    def test_identical_states(self):
        state = np.array([0.6, 0.8j])
        assert np.isclose(state_fidelity(state, state), 1.0)

    def test_orthogonal_states(self):
        assert np.isclose(state_fidelity([1, 0], [0, 1]), 0.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            state_fidelity([1, 0], [1, 0, 0])

    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            state_fidelity([0, 0], [1, 0])


class TestPhaseCorrectedTwoQubit:
    def test_cz_with_local_phases_recovers_zero_error(self):
        cz = np.diag([1, 1, 1, -1]).astype(complex)
        corrupted = np.diag(np.kron([1, np.exp(0.4j)], [1, np.exp(-0.9j)])) @ cz
        error = phase_corrected_two_qubit_error(corrupted, cz)
        assert error < 1e-4

    def test_genuinely_wrong_gate_keeps_error(self):
        cz = np.diag([1, 1, 1, -1]).astype(complex)
        iswap_like = np.eye(4, dtype=complex)
        iswap_like[1, 1] = 0
        iswap_like[2, 2] = 0
        iswap_like[1, 2] = 1j
        iswap_like[2, 1] = 1j
        assert phase_corrected_two_qubit_error(iswap_like, cz) > 0.1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            phase_corrected_two_qubit_error(np.eye(2), np.eye(2))

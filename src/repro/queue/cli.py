"""``repro serve`` and ``repro queue`` — the daemon and its shell client.

Examples::

    repro serve --port 8765 --budget-w 10 --trace serve-trace.jsonl
    repro queue submit --benchmark qgan --qubits 12 --fidelity --wait
    repro queue submit --benchmark ising --priority deferrable --session bob
    repro queue status j000001-abcd1234
    repro queue collect j000001-abcd1234 --timeout 120
    repro queue cancel j000001-abcd1234
    repro queue stats

The ``queue`` subcommands find the daemon through the queue root's
``daemon.json`` descriptor (same resolution as the server: ``--root``,
then ``REPRO_QUEUE_ROOT``, then ``~/.repro/queue``), so ``repro queue
stats`` reports exactly what ``GET /queue/stats`` on the advertised URL
returns; ``--url`` overrides discovery.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from .. import telemetry
from ..compiler.pipeline import DEFAULT_OPT_LEVEL, OPT_LEVELS
from ..runtime.spec import CompileOptions, ExperimentSpec, FidelityOptions
from ..simulation.trajectories import PLAN_MODES
from .client import QueueClient, QueueServerError
from .model import PRIORITIES
from .scheduler import DEFAULT_QUEUE_WORKERS
from .store import DEFAULT_QUEUE_ROOT


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the durable job-queue daemon (HTTP/JSON API over "
        "the power-aware scheduler).",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help=f"queue root directory (default: $REPRO_QUEUE_ROOT or {DEFAULT_QUEUE_ROOT})",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result store shared with sweeps/sessions "
        "(default: .repro_cache/sweeps)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0: pick a free one; the chosen port is "
        "advertised in the queue root's daemon.json)",
    )
    parser.add_argument(
        "--budget-w", type=float, default=None, metavar="W",
        help="fridge power budget admissions are checked against "
        "(default: the paper's 10 W)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_QUEUE_WORKERS, metavar="N",
        help=f"concurrent job executions (default {DEFAULT_QUEUE_WORKERS})",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="S",
        help="scheduler poll interval in seconds (default 0.5)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL telemetry trace (queue.* spans and metrics) to PATH",
    )
    return parser


def serve_main(argv: Sequence[str]) -> int:
    """Entry point of ``repro serve ...``."""
    args = build_serve_parser().parse_args(argv)
    if args.trace:
        telemetry.configure_sink(args.trace)
    from .server import serve  # deferred: pulls in the execution stack

    return serve(
        root=args.root,
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        budget_w=args.budget_w,
        workers=args.workers,
        poll_interval_s=args.poll_interval,
    )


def _add_connection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="daemon URL (default: discovered from the queue root's daemon.json)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="queue root used for daemon discovery "
        f"(default: $REPRO_QUEUE_ROOT or {DEFAULT_QUEUE_ROOT})",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table", dest="output_format",
        help="output format (default: human-readable)",
    )


def build_queue_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro queue",
        description="Submit to and inspect the repro serve job queue.",
    )
    actions = parser.add_subparsers(dest="action", required=True, metavar="ACTION")

    submit = actions.add_parser("submit", help="enqueue one benchmark job")
    _add_connection_args(submit)
    submit.add_argument("--benchmark", required=True, metavar="NAME")
    submit.add_argument("--backend", default="digiq-opt8", metavar="NAME")
    submit.add_argument("--qubits", type=int, default=16, metavar="N")
    submit.add_argument("--seed", type=int, default=0, metavar="SEED")
    submit.add_argument(
        "--opt-level", type=int, default=DEFAULT_OPT_LEVEL, choices=OPT_LEVELS
    )
    submit.add_argument(
        "--fidelity", action="store_true",
        help="also estimate Monte-Carlo end-to-end fidelity",
    )
    submit.add_argument("--trajectories", type=int, default=100, metavar="N")
    submit.add_argument(
        "--sim-mode", default="auto", choices=tuple(PLAN_MODES), dest="sim_mode",
        help="trajectory kernel for --fidelity jobs (default auto)",
    )
    submit.add_argument(
        "--priority", default="batch", choices=PRIORITIES,
        help="admission priority class (default batch)",
    )
    submit.add_argument(
        "--session", default="anonymous", metavar="ID",
        help="client session id for fair-share accounting",
    )
    submit.add_argument(
        "--due-in", type=float, default=None, metavar="S", dest="due_in_s",
        help="deadline in seconds from now (EDD ordering within a priority class)",
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes and print its row"
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up waiting after S seconds (with --wait)",
    )

    status = actions.add_parser("status", help="one job's current state")
    _add_connection_args(status)
    status.add_argument("job_id", metavar="JOB_ID")

    collect = actions.add_parser("collect", help="wait for and print a job's result row")
    _add_connection_args(collect)
    collect.add_argument("job_id", metavar="JOB_ID")
    collect.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up after S seconds (default: wait forever)",
    )

    cancel = actions.add_parser("cancel", help="cancel a not-yet-started job")
    _add_connection_args(cancel)
    cancel.add_argument("job_id", metavar="JOB_ID")

    stats = actions.add_parser("stats", help="live scheduler and queue accounting")
    _add_connection_args(stats)
    return parser


def _client(args: argparse.Namespace) -> QueueClient:
    return QueueClient(url=args.url, root=args.root)


def _print_job(job_dict: Dict[str, object], output_format: str) -> None:
    if output_format == "json":
        print(json.dumps(job_dict, sort_keys=True, indent=2))
        return
    print(
        f"{job_dict['job_id']}: {job_dict['state']} "
        f"(priority={job_dict['priority']}, session={job_dict['session']}, "
        f"benchmark={job_dict['benchmark']}, power={job_dict['power_w']:.6f} W, "
        f"attempts={job_dict['attempts']})"
    )
    if job_dict.get("error"):
        print(f"  error: {job_dict['error']}")


def queue_main(argv: Sequence[str]) -> int:
    """Entry point of ``repro queue ...``."""
    parser = build_queue_parser()
    args = parser.parse_args(argv)
    try:
        client = _client(args)
        if args.action == "submit":
            return _submit(client, args)
        if args.action == "status":
            _print_job(client.job(args.job_id).as_dict(), args.output_format)
            return 0
        if args.action == "collect":
            return _collect(client, args.job_id, args.timeout, args.output_format)
        if args.action == "cancel":
            won = client.cancel(args.job_id)
            job = client.job(args.job_id)
            _print_job(job.as_dict(), args.output_format)
            return 0 if won else 1
        if args.action == "stats":
            return _stats(client, args.output_format)
    except QueueServerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled action {args.action}")  # pragma: no cover


def _submit(client: QueueClient, args: argparse.Namespace) -> int:
    spec = ExperimentSpec(
        benchmark=args.benchmark,
        backend=args.backend,
        num_qubits=args.qubits,
        seed=args.seed,
        compile_options=CompileOptions(opt_level=args.opt_level),
        fidelity=(
            FidelityOptions(trajectories=args.trajectories, mode=args.sim_mode)
            if args.fidelity
            else None
        ),
    )
    handle = client.submit(
        spec,
        priority=args.priority,
        session=args.session,
        due_in_s=args.due_in_s,
    )
    _print_job(handle.job.as_dict(), args.output_format)
    if not args.wait:
        return 0
    return _collect(client, handle.job_id, args.timeout, args.output_format)


def _collect(
    client: QueueClient,
    job_id: str,
    timeout: Optional[float],
    output_format: str,
) -> int:
    handle = client.handle(job_id)
    try:
        result = handle.result(timeout=timeout)
    except TimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except Exception as error:  # CancelledError / QueueServerError
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    if output_format == "json":
        print(json.dumps(result.as_dict(), sort_keys=True, indent=2))
    else:
        _print_job(handle.job.as_dict(), output_format)
        print(json.dumps(result.row, sort_keys=True, indent=2))
    return 0


def _stats(client: QueueClient, output_format: str) -> int:
    stats = client.stats()
    if output_format == "json":
        print(json.dumps(stats, sort_keys=True, indent=2))
        return 0
    depths = stats.get("depths", {})
    print(f"queue {stats.get('root')} via {client.url}")
    print(
        "  depths: "
        + ", ".join(f"{state}={count}" for state, count in sorted(depths.items()))
    )
    print(
        f"  power: {stats.get('power_in_flight_w', 0)} W in flight "
        f"(peak {stats.get('peak_power_in_flight_w', 0)} W) "
        f"of {stats.get('budget_w', 0)} W budget"
    )
    print(
        f"  workers: {stats.get('max_workers')}  deferrals: {stats.get('deferrals', 0)}  "
        f"cache hits: {stats.get('cache_hits', 0)}"
    )
    return 0

"""Tests for power-aware admission scheduling and the QueueService engine."""

import threading
import time

import pytest

from repro import telemetry
from repro.hardware.budget import FridgeBudget
from repro.queue.model import QueueJob
from repro.queue.scheduler import QueueService, order_candidates
from repro.queue.store import QueueStore
from repro.runtime.store import ResultStore


def key_for(seq):
    return f"{seq:02x}" + "0" * 62


def fake_job(seq, power_w=1.0, priority="batch", session="s", due_at=None, submitted_at=None):
    return QueueJob(
        job_id=f"j{seq:06d}-test",
        seq=seq,
        spec={"benchmark": "bv"},
        result_key=key_for(seq),
        power_w=power_w,
        priority=priority,
        session=session,
        submitted_at=float(seq) if submitted_at is None else submitted_at,
        due_at=due_at,
    )


def enqueue(store, **kwargs):
    """Durably submit one synthetic job (store assigns id and seq)."""
    def _build(job_id, seq):
        job = fake_job(seq, **kwargs)
        return QueueJob.from_dict({**job.as_dict(), "job_id": job_id})

    return store.submit(_build)


def service(tmp_path, budget_w=10.0, max_workers=1, runner=None, weights=None):
    return QueueService(
        QueueStore(tmp_path / "queue"),
        ResultStore(tmp_path / "cache"),
        budget=FridgeBudget(power_w=budget_w),
        max_workers=max_workers,
        runner=runner if runner is not None else (lambda job: {"row": {}, "key": job.result_key}),
        fair_share_weights=weights,
    )


class TestOrderCandidates:
    def test_priority_classes_dominate(self):
        jobs = [
            fake_job(1, priority="deferrable"),
            fake_job(2, priority="batch"),
            fake_job(3, priority="interactive"),
        ]
        ordered = order_candidates(jobs, usage={})
        assert [j.priority for j in ordered] == ["interactive", "batch", "deferrable"]

    def test_fair_share_prefers_lighter_session(self):
        jobs = [fake_job(1, session="greedy"), fake_job(2, session="idle")]
        ordered = order_candidates(jobs, usage={"greedy": 5.0})
        assert [j.session for j in ordered] == ["idle", "greedy"]

    def test_weights_scale_usage(self):
        jobs = [fake_job(1, session="heavy"), fake_job(2, session="light")]
        # heavy has used more power, but its 10x weight makes its share smaller
        ordered = order_candidates(
            jobs, usage={"heavy": 4.0, "light": 1.0}, weights={"heavy": 10.0}
        )
        assert [j.session for j in ordered] == ["heavy", "light"]
        with pytest.raises(ValueError, match="weight"):
            order_candidates(jobs, usage={}, weights={"heavy": 0.0})

    def test_edd_within_class_then_seq(self):
        jobs = [
            fake_job(1, submitted_at=50.0),              # falls back to submission
            fake_job(2, submitted_at=60.0, due_at=10.0),  # explicit early deadline
            fake_job(3, submitted_at=50.0),              # FIFO tie -> seq order
        ]
        ordered = order_candidates(jobs, usage={})
        assert [j.seq for j in ordered] == [2, 1, 3]

    def test_deterministic_under_fixed_trace(self):
        jobs = [
            fake_job(seq, priority=p, session=s, power_w=w)
            for seq, (p, s, w) in enumerate(
                [
                    ("batch", "a", 1.0),
                    ("interactive", "b", 2.0),
                    ("deferrable", "a", 0.5),
                    ("batch", "b", 1.5),
                    ("interactive", "a", 1.0),
                ]
            )
        ]
        first = [j.seq for j in order_candidates(jobs, usage={"a": 1.0})]
        for _ in range(5):
            again = [j.seq for j in order_candidates(list(reversed(jobs)), usage={"a": 1.0})]
            assert again == first


class TestAdmission:
    def test_ten_watt_budget_never_oversubscribed(self, tmp_path):
        svc = service(tmp_path, budget_w=10.0, max_workers=8, runner=lambda job: None)
        queued = [fake_job(seq, power_w=6.0) for seq in range(1, 4)]
        admitted = svc.admissible(queued)
        assert [j.seq for j in admitted] == [1]  # 6 + 6 > 10

    def test_non_deferrable_blocks_head_of_line(self, tmp_path):
        svc = service(tmp_path, budget_w=10.0, max_workers=8)
        queued = [
            fake_job(1, power_w=8.0),
            fake_job(2, power_w=11.0),  # batch, does not fit: blocks the walk
            fake_job(3, power_w=1.0),
        ]
        assert [j.seq for j in svc.admissible(queued)] == [1]

    def test_deferrable_parks_and_walk_continues(self, tmp_path):
        svc = service(tmp_path, budget_w=10.0, max_workers=8)
        before = telemetry.counter("queue.deferrals").value
        queued = [
            fake_job(1, power_w=8.0, priority="batch"),
            fake_job(2, power_w=5.0, priority="deferrable"),  # parked
            fake_job(3, power_w=1.0, priority="deferrable"),  # still fits
        ]
        assert [j.seq for j in svc.admissible(queued)] == [1, 3]
        assert telemetry.counter("queue.deferrals").value == before + 1

    def test_worker_slots_cap_admission(self, tmp_path):
        svc = service(tmp_path, budget_w=100.0, max_workers=2)
        queued = [fake_job(seq) for seq in range(1, 5)]
        assert len(svc.admissible(queued)) == 2


class TestQueueServiceTick:
    def test_inline_tick_runs_to_done(self, tmp_path):
        executed = []
        svc = service(
            tmp_path, runner=lambda job: executed.append(job.job_id) or {"r": 1}
        )
        job = enqueue(svc.store, power_w=2.0)
        admitted = svc.tick()
        assert [j.job_id for j in admitted] == [job.job_id]
        assert executed == [job.job_id]
        assert svc.store.get(job.job_id).state == "done"
        assert svc.results.get(job.result_key) == {"r": 1}
        assert svc.power_in_flight() == 0.0
        assert svc.peak_power_w == pytest.approx(2.0)

    def test_cache_hit_completes_without_running(self, tmp_path):
        executed = []
        svc = service(tmp_path, runner=lambda job: executed.append(job.job_id))
        job = enqueue(svc.store)
        svc.results.put(job.result_key, {"row": {"cached": True}})
        before = telemetry.counter("queue.cache_hits").value
        assert svc.tick() == []
        assert executed == []
        assert svc.store.get(job.job_id).state == "done"
        assert telemetry.counter("queue.cache_hits").value == before + 1

    def test_failed_job_records_error(self, tmp_path):
        def explode(job):
            raise RuntimeError("bad trajectory")

        svc = service(tmp_path, runner=explode)
        job = enqueue(svc.store)
        svc.tick()
        got = svc.store.get(job.job_id)
        assert got.state == "failed"
        assert "bad trajectory" in got.error
        assert svc.power_in_flight() == 0.0

    def test_deferrable_waits_for_headroom_then_runs(self, tmp_path):
        """The queue-smoke scenario: over-budget deferrable runs only after."""
        order = []
        svc = service(tmp_path, budget_w=10.0, runner=lambda job: order.append(job.seq) or {})
        big = enqueue(svc.store, power_w=8.0, priority="batch")
        parked = enqueue(svc.store, power_w=7.0, priority="deferrable")
        svc.tick()  # inline: runs big to completion, parks the deferrable
        assert svc.store.get(big.job_id).state == "done"
        assert svc.store.get(parked.job_id).state == "queued"
        svc.tick()  # headroom freed: the deferrable runs now
        assert svc.store.get(parked.job_id).state == "done"
        assert order == [big.seq, parked.seq]

    def test_tick_skips_jobs_cancelled_between_scans(self, tmp_path):
        svc = service(tmp_path)
        job = enqueue(svc.store)
        svc.store.cancel(job.job_id)
        assert svc.tick() == []
        assert svc.store.get(job.job_id).state == "cancelled"


class TestConcurrentBudget:
    def test_power_in_flight_gauge_never_exceeds_budget(self, tmp_path):
        """Jobs summing over 10 W never run simultaneously (gauge-asserted)."""
        release = threading.Event()
        peaks = []

        def blocking_runner(job):
            peaks.append(telemetry.gauge("queue.power_in_flight").value)
            release.wait(10.0)
            return {}

        svc = service(tmp_path, budget_w=10.0, max_workers=4, runner=blocking_runner)
        first = enqueue(svc.store, power_w=6.0)
        second = enqueue(svc.store, power_w=6.0)
        svc.tick()  # admits exactly one: 6 + 6 > 10
        deadline = time.monotonic() + 5.0
        while not peaks and time.monotonic() < deadline:
            time.sleep(0.01)
        assert svc.power_in_flight() == pytest.approx(6.0)
        assert telemetry.gauge("queue.power_in_flight").value == pytest.approx(6.0)
        assert svc.tick() == []  # still no headroom for the second job
        release.set()
        deadline = time.monotonic() + 5.0
        while svc.power_in_flight() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        svc.tick()  # now the second one goes
        deadline = time.monotonic() + 5.0
        while svc.store.get(second.job_id).state != "done" and time.monotonic() < deadline:
            time.sleep(0.01)
        svc.drain()
        assert svc.store.get(first.job_id).state == "done"
        assert svc.store.get(second.job_id).state == "done"
        assert max(peaks) <= 10.0  # the gauge never saw an over-budget sum
        assert svc.peak_power_w <= 10.0
        stats = svc.stats()
        assert stats["peak_power_in_flight_w"] <= stats["budget_w"]

    def test_stats_merges_store_and_scheduler(self, tmp_path):
        svc = service(tmp_path, budget_w=10.0)
        enqueue(svc.store, power_w=1.5, session="alice")
        svc.tick()
        stats = svc.stats()
        assert stats["budget_w"] == 10.0
        assert stats["depths"]["done"] == 1
        assert stats["session_usage_w"]["alice"] == pytest.approx(1.5)

"""Tests for the gate library matrices and the statevector simulator."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.library import (
    DIGIQ_BASIS,
    KNOWN_GATES,
    gate_matrix,
    gate_spec,
    inverse_gate,
    validate_gate,
)
from repro.circuits.simulator import (
    basis_state_index,
    circuit_unitary,
    dominant_bitstring,
    measure_probabilities,
    sample_counts,
    simulate,
    zero_state,
)
from repro.physics.operators import is_unitary


class TestLibrary:
    def test_every_known_gate_has_matrix_and_is_unitary(self):
        for name in sorted(KNOWN_GATES):
            spec = gate_spec(name)
            params = tuple(0.31 * (i + 1) for i in range(spec.num_params))
            gate = Gate(name, tuple(range(spec.num_qubits)), params)
            matrix = gate_matrix(gate)
            assert matrix.shape == (2**spec.num_qubits,) * 2
            assert is_unitary(matrix)

    def test_digiq_basis_subset_of_known(self):
        assert DIGIQ_BASIS <= KNOWN_GATES

    def test_unknown_gate_lookup(self):
        with pytest.raises(KeyError):
            gate_spec("nope")

    def test_inverse_gate_roundtrip(self):
        for name in ("s", "t", "rx", "rz", "u3", "sx", "cp"):
            spec = gate_spec(name)
            params = tuple(0.7 for _ in range(spec.num_params))
            gate = Gate(name, tuple(range(spec.num_qubits)), params)
            inverse = inverse_gate(gate)
            product = gate_matrix(inverse) @ gate_matrix(gate)
            phase = product[0, 0]
            assert np.allclose(product, phase * np.eye(product.shape[0]), atol=1e-9)

    def test_validate_gate_rejects_bad_arity(self):
        with pytest.raises(ValueError):
            validate_gate(Gate("cz", (0,)))


class TestSimulator:
    def test_zero_state(self):
        state = zero_state(3)
        assert state[0] == 1.0 and np.isclose(np.linalg.norm(state), 1.0)

    def test_basis_state_index_little_endian(self):
        assert basis_state_index([1, 0, 0]) == 1
        assert basis_state_index([0, 1, 1]) == 6

    def test_x_flips_qubit_zero(self):
        state = simulate(QuantumCircuit(2).x(0))
        assert np.isclose(abs(state[1]), 1.0)

    def test_bell_state(self):
        state = simulate(QuantumCircuit(2).h(0).cx(0, 1))
        probs = measure_probabilities(state)
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[3], 0.5)

    def test_cz_phase(self):
        state = simulate(QuantumCircuit(2).x(0).x(1).cz(0, 1))
        assert np.isclose(state[3], -1.0)

    def test_ccx_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                circuit = QuantumCircuit(3)
                if a:
                    circuit.x(0)
                if b:
                    circuit.x(1)
                circuit.ccx(0, 1, 2)
                result = dominant_bitstring(simulate(circuit))
                target_bit = int(result[0])  # qubit 2 is the leftmost character
                assert target_bit == (a & b)

    def test_swap(self):
        state = simulate(QuantumCircuit(2).x(0).swap(0, 1))
        assert dominant_bitstring(state) == "10"

    def test_circuit_unitary_matches_simulation(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).t(1)
        unitary = circuit_unitary(circuit)
        assert is_unitary(unitary)
        assert np.allclose(unitary[:, 0], simulate(circuit))

    def test_large_circuit_rejected(self):
        with pytest.raises(ValueError):
            simulate(QuantumCircuit(25))

    def test_sample_counts_deterministic_seed(self):
        state = simulate(QuantumCircuit(2).h(0))
        counts_a = sample_counts(state, shots=100, seed=3)
        counts_b = sample_counts(state, shots=100, seed=3)
        assert counts_a == counts_b
        assert sum(counts_a.values()) == 100

    def test_sample_counts_keys_have_register_width(self):
        # Regression: width must come from the state's last axis, not its
        # total size — they only coincide for unbatched input.
        state = simulate(QuantumCircuit(3).h(0).x(2))
        counts = sample_counts(state, shots=50, seed=0)
        assert all(len(key) == 3 for key in counts)

    def test_sample_counts_rejects_batched_states(self):
        batch = np.tile(zero_state(2), (4, 1))
        with pytest.raises(ValueError, match="batched"):
            sample_counts(batch, shots=10, seed=0)

    def test_dominant_bitstring_rejects_batched_states(self):
        batch = np.tile(zero_state(2), (4, 1))
        with pytest.raises(ValueError, match="batched"):
            dominant_bitstring(batch)

    def test_non_power_of_two_state_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            dominant_bitstring(np.full(3, np.sqrt(1 / 3)))

    def test_sample_counts_tally_matches_loop_reference(self):
        state = simulate(QuantumCircuit(3).h(0).h(1).cx(1, 2))
        probs = np.abs(state) ** 2
        probs /= probs.sum()
        counts = sample_counts(state, shots=500, seed=11)
        outcomes = np.random.default_rng(11).choice(probs.size, size=500, p=probs)
        reference = {}
        for outcome in outcomes:
            key = format(int(outcome), "03b")
            reference[key] = reference.get(key, 0) + 1
        assert counts == reference

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_single_x_places_excitation(self, num_qubits, target):
        target = target % num_qubits
        state = simulate(QuantumCircuit(num_qubits).x(target))
        assert np.isclose(abs(state[1 << target]), 1.0)

    @given(st.lists(st.sampled_from(["h", "t", "s", "x", "z"]), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_norm_preserved(self, names):
        circuit = QuantumCircuit(2)
        for index, name in enumerate(names):
            circuit.add(name, (index % 2,))
        state = simulate(circuit)
        assert np.isclose(np.linalg.norm(state), 1.0)

"""Execution-time model and the Impossible-MIMD baseline (Fig. 9).

The paper normalises DigiQ's circuit execution time to an *Impossible MIMD*
controller: a hypothetical system with the same gate times as DigiQ (which
are also similar to today's microwave prototypes) but unlimited parallelism
and no decomposition overhead.  The comparison quantifies what the SIMD
restriction and the longer gate decompositions cost.

:func:`execution_time_ns` runs the SIMD scheduler; :func:`impossible_mimd_time_ns`
computes the baseline; :func:`normalized_execution_time` is their ratio (one
bar of Fig. 9); :func:`execution_report` sweeps a set of configurations over a
benchmark circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compiler.pipeline import CompiledCircuit
from .architecture import DigiQConfig, single_qubit_gate_time_ns
from .calibration import DeviceCalibration
from .scheduler import SIMDScheduler, SIMDScheduleResult


@dataclass(frozen=True)
class ExecutionEstimate:
    """Execution time of one benchmark on one DigiQ configuration."""

    benchmark: str
    config_label: str
    digiq_time_ns: float
    mimd_time_ns: float
    total_cycles: int
    serialization_overhead: float

    @property
    def normalized_time(self) -> float:
        """DigiQ execution time normalised to the Impossible MIMD baseline."""
        if self.mimd_time_ns <= 0:
            return float("inf")
        return self.digiq_time_ns / self.mimd_time_ns

    def as_row(self) -> Dict[str, object]:
        """Row for the Fig. 9 table."""
        return {
            "benchmark": self.benchmark,
            "design": self.config_label,
            "digiq_time_us": self.digiq_time_ns * 1e-3,
            "mimd_time_us": self.mimd_time_ns * 1e-3,
            "normalized_time": self.normalized_time,
            "serialization_overhead": self.serialization_overhead,
        }


def execution_time_ns(
    compiled: CompiledCircuit,
    config: DigiQConfig,
    calibration: Optional[DeviceCalibration] = None,
) -> SIMDScheduleResult:
    """DigiQ execution time of a compiled circuit (SIMD scheduling result)."""
    scheduler = SIMDScheduler(config, calibration=calibration)
    return scheduler.schedule(compiled)


def impossible_mimd_time_ns(
    compiled: CompiledCircuit,
    config: DigiQConfig,
) -> float:
    """Execution time of the Impossible MIMD baseline, in ns.

    The baseline applies every moment's gates fully in parallel: a moment
    takes as long as its slowest gate — the CZ time for moments containing a
    two-qubit gate, one single-qubit gate time for moments of single-qubit
    gates, and nothing for moments that only carry virtual Rz gates.
    """
    single_gate_ns = max(
        single_qubit_gate_time_ns(config.group_frequency(group))
        for group in range(config.groups)
    )
    total = 0.0
    for moment in compiled.schedule.moments:
        duration = 0.0
        if moment.two_qubit_gates:
            duration = config.cz_time_ns
        if any(gate.name != "rz" for gate in moment.single_qubit_gates):
            duration = max(duration, single_gate_ns)
        total += duration
    return total


def normalized_execution_time(
    compiled: CompiledCircuit,
    config: DigiQConfig,
    calibration: Optional[DeviceCalibration] = None,
    benchmark_name: Optional[str] = None,
) -> ExecutionEstimate:
    """One Fig. 9 bar: DigiQ time over Impossible-MIMD time for a benchmark."""
    result = execution_time_ns(compiled, config, calibration)
    mimd = impossible_mimd_time_ns(compiled, config)
    return ExecutionEstimate(
        benchmark=benchmark_name or compiled.source.name,
        config_label=config.label,
        digiq_time_ns=result.total_time_ns,
        mimd_time_ns=mimd,
        total_cycles=result.total_cycles,
        serialization_overhead=result.serialization_overhead,
    )


def execution_report(
    compiled: CompiledCircuit,
    configs: Sequence[DigiQConfig],
    calibrations: Optional[Dict[str, DeviceCalibration]] = None,
    benchmark_name: Optional[str] = None,
) -> List[ExecutionEstimate]:
    """Fig. 9 rows for one benchmark across several DigiQ configurations.

    ``calibrations`` optionally maps a config label to a pre-built
    :class:`DeviceCalibration`; configurations without one use the scheduler's
    synthetic delay model.
    """
    calibrations = calibrations or {}
    return [
        normalized_execution_time(
            compiled,
            config,
            calibration=calibrations.get(config.label),
            benchmark_name=benchmark_name,
        )
        for config in configs
    ]

"""Software calibration of the SIMD hardware (Sec. V of the paper).

DigiQ's control signals are shared by whole groups of qubits, so per-qubit
hardware calibration (pulse shaping) is impossible.  Instead calibration
moves to software (Fig. 6(b)):

1. **Design time** — find SFQ bitstreams implementing the desired basis gates
   with high fidelity at the nominal (parking) frequency of each group
   (:mod:`repro.core.bitstream`).
2. **Characterisation** — measure each qubit's actual oscillation frequency
   (modelled here by the sampled :class:`~repro.noise.variability.QubitSample`).
3. **Basis extraction** — determine the *actual* operation each shared
   bitstream implements on each qubit by propagating it with the qubit's
   measured frequency.
4. **Compilation** — decompose every gate of the program using the per-qubit
   actual basis operations (:mod:`repro.core.decomposition`).

:class:`DeviceCalibration` packages those steps for a whole device and caches
per-qubit bases and per-gate decompositions so the execution-time and error
analyses can reuse them cheaply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..noise.variability import QubitSample, VariabilityModel
from ..physics.transmon import Transmon
from .architecture import DigiQConfig
from .bitstream import SFQBitstream, cached_ry_half_pi_bitstream, find_rz_bitstream
from .decomposition import (
    MinBasis,
    MinDecomposition,
    OptBasis,
    OptDecomposition,
    decompose_min,
    decompose_opt,
)
from .rz_delay import reachable_phases

#: Decomposition type returned for either variant.
Decomposition = Union[OptDecomposition, MinDecomposition]

#: Rz angles of the idle gates added to the DigiQ_min discrete gate set as the
#: BS value grows.  BS = 2 gives {Ry(pi/2), T}; BS = 4 adds {Tdg, S}.
MIN_IDLE_ANGLES = (math.pi / 4.0, -math.pi / 4.0, math.pi / 2.0, -math.pi / 2.0)


@dataclass(frozen=True)
class GroupBitstreams:
    """The shared SFQ bitstreams stored for one SIMD group.

    Attributes
    ----------
    group:
        Group index.
    nominal_frequency:
        The group's parking frequency in GHz.
    ry_half_pi:
        The stored Ry(pi/2) bitstream.
    idle_gates:
        Idle (pulse-free) bitstreams implementing Z rotations, used by the
        DigiQ_min discrete gate set (empty for DigiQ_opt).
    """

    group: int
    nominal_frequency: float
    ry_half_pi: SFQBitstream
    idle_gates: Tuple[SFQBitstream, ...] = ()

    @property
    def gate_names(self) -> Tuple[str, ...]:
        """Names of the stored gates, Ry(pi/2) first."""
        return ("ry_half_pi",) + tuple(stream.target_name for stream in self.idle_gates)


class DeviceCalibration:
    """Per-qubit software calibration state for one DigiQ controller.

    Instances are normally built with :meth:`calibrate`, which samples qubit
    variability, finds the shared group bitstreams and wires everything
    together.  The heavyweight quantities (per-qubit bases, per-gate
    decompositions) are computed lazily and cached.
    """

    def __init__(
        self,
        config: DigiQConfig,
        samples: Sequence[QubitSample],
        group_bitstreams: Dict[int, GroupBitstreams],
        levels: int = 6,
    ):
        self.config = config
        self.samples = list(samples)
        self.group_bitstreams = dict(group_bitstreams)
        self.levels = levels
        for sample in self.samples:
            if sample.group not in self.group_bitstreams:
                raise ValueError(
                    f"qubit {sample.index} belongs to group {sample.group} which has "
                    "no stored bitstreams"
                )
        self._opt_bases: Dict[int, OptBasis] = {}
        self._min_bases: Dict[int, MinBasis] = {}
        self._decomposition_cache: Dict[Tuple[int, bytes], Decomposition] = {}

    # -- construction ---------------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        config: DigiQConfig,
        num_qubits: int,
        variability: Optional[VariabilityModel] = None,
        seed: Optional[int] = 0,
        levels: int = 6,
    ) -> "DeviceCalibration":
        """Run the full calibration workflow for a device of ``num_qubits`` qubits.

        Qubits are assigned to groups by the config's static grouping rule;
        the nominal frequency of each group is its parking frequency; actual
        frequencies are sampled from the variability model (a fresh
        seed-``seed`` model if none is given).
        """
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        variability = variability or VariabilityModel(seed=seed)
        groups = [config.group_of_qubit(q, num_qubits) for q in range(num_qubits)]
        nominal = [config.group_frequency(g) for g in groups]
        samples = variability.sample_qubits(nominal, groups)
        group_bitstreams = {
            group: build_group_bitstreams(config, group)
            for group in sorted(set(groups))
        }
        return cls(config, samples, group_bitstreams, levels=levels)

    # -- basic queries ----------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of calibrated qubits."""
        return len(self.samples)

    def sample(self, qubit: int) -> QubitSample:
        """The variability sample (nominal/actual frequency) of a qubit."""
        return self.samples[qubit]

    def transmon(self, qubit: int) -> Transmon:
        """The actual (drifted) transmon model of a qubit."""
        return self.samples[qubit].transmon(levels=self.levels)

    def measured_frequency(self, qubit: int) -> float:
        """The characterised qubit frequency used by the software calibration."""
        return self.samples[qubit].actual_frequency

    def drift(self, qubit: int) -> float:
        """Frequency drift (actual - nominal) of a qubit in GHz."""
        return self.samples[qubit].drift

    def bitstreams_for(self, qubit: int) -> GroupBitstreams:
        """The shared bitstreams of the qubit's group."""
        return self.group_bitstreams[self.samples[qubit].group]

    # -- per-qubit bases ----------------------------------------------------------------

    def opt_basis(self, qubit: int) -> OptBasis:
        """The DigiQ_opt basis (actual Ubs + reachable phases) of a qubit."""
        if qubit not in self._opt_bases:
            sample = self.samples[qubit]
            shared = self.bitstreams_for(qubit)
            ubs = shared.ry_half_pi.qubit_unitary(
                sample.transmon(levels=self.levels), levels=self.levels
            )
            phases = reachable_phases(
                sample.actual_frequency,
                n_slots=self.config.n_delay_slots,
                clock_period_ns=self.config.sfq_clock_ns,
            )
            self._opt_bases[qubit] = OptBasis(ubs, phases)
        return self._opt_bases[qubit]

    def min_basis(self, qubit: int) -> MinBasis:
        """The DigiQ_min discrete basis (actual gate set) of a qubit."""
        if qubit not in self._min_bases:
            sample = self.samples[qubit]
            shared = self.bitstreams_for(qubit)
            transmon = sample.transmon(levels=self.levels)
            gates = [shared.ry_half_pi.qubit_unitary(transmon, levels=self.levels)]
            names = ["ry_half_pi"]
            for stream in shared.idle_gates:
                phase = (
                    -2.0
                    * math.pi
                    * sample.actual_frequency
                    * stream.num_bits
                    * stream.clock_period_ns
                ) % (2.0 * math.pi)
                gates.append(
                    np.diag(
                        [np.exp(-0.5j * phase), np.exp(+0.5j * phase)]
                    ).astype(complex)
                )
                names.append(stream.target_name)
            self._min_bases[qubit] = MinBasis(gates, names=names)
        return self._min_bases[qubit]

    # -- decomposition ---------------------------------------------------------------

    def decompose(self, qubit: int, target: np.ndarray) -> Decomposition:
        """Decompose a 2x2 target gate for a specific qubit (cached).

        Dispatches to the opt or min decomposition according to the config's
        variant.  Decompositions are cached per qubit and per target matrix
        (rounded to 9 decimals) because compiled circuits repeat the same few
        single-qubit gates on the same qubits many times.
        """
        target = np.asarray(target, dtype=complex)
        key = (qubit, np.round(target, 9).tobytes())
        cached = self._decomposition_cache.get(key)
        if cached is not None:
            return cached
        if self.config.is_opt:
            result: Decomposition = decompose_opt(
                target,
                self.opt_basis(qubit),
                max_pulses=self.config.opt_max_pulses,
                error_target=self.config.error_target,
            )
        else:
            result = decompose_min(
                target,
                self.min_basis(qubit),
                max_depth=self.config.min_max_depth,
                error_target=self.config.error_target,
            )
        self._decomposition_cache[key] = result
        return result

    def gate_error(self, qubit: int, target: np.ndarray) -> float:
        """Decomposed gate error of a target on a qubit."""
        return self.decompose(qubit, target).error

    def gate_cycles(self, qubit: int, target: np.ndarray) -> int:
        """Number of controller cycles the decomposed gate occupies on a qubit."""
        decomposition = self.decompose(qubit, target)
        if isinstance(decomposition, OptDecomposition):
            return max(1, decomposition.num_pulses)
        return max(1, decomposition.depth)

    def uncalibrated_gate_error(self, qubit: int, target: np.ndarray) -> float:
        """Gate error if the decomposition ignored the qubit's drift.

        The gate is decomposed against the *nominal* basis (as if the qubit
        sat exactly at its parking frequency) and then evaluated on the
        *actual* basis — i.e. what would happen without software calibration.
        Used for the calibration-on/off ablation.
        """
        from .decomposition import gate_error as plain_gate_error

        sample = self.samples[qubit]
        shared = self.bitstreams_for(qubit)
        nominal_transmon = sample.nominal_transmon(levels=self.levels)
        nominal_ubs = shared.ry_half_pi.qubit_unitary(nominal_transmon, levels=self.levels)
        nominal_phases = reachable_phases(
            sample.nominal_frequency,
            n_slots=self.config.n_delay_slots,
            clock_period_ns=self.config.sfq_clock_ns,
        )
        nominal_basis = OptBasis(nominal_ubs, nominal_phases)
        target = np.asarray(target, dtype=complex)
        if self.config.is_opt:
            planned = decompose_opt(
                target,
                nominal_basis,
                max_pulses=self.config.opt_max_pulses,
                error_target=self.config.error_target,
            )
            actual_matrix = self.opt_basis(qubit).sequence_unitary(planned.delays)
            rz = np.diag(
                [
                    np.exp(-0.5j * planned.residual_phase),
                    np.exp(+0.5j * planned.residual_phase),
                ]
            )
            return plain_gate_error(rz @ actual_matrix, target)
        planned_min = decompose_min(
            target,
            MinBasis(
                [nominal_ubs]
                + [
                    np.diag(
                        [
                            np.exp(-0.5j * angle),
                            np.exp(+0.5j * angle),
                        ]
                    )
                    for angle in self._nominal_idle_phases(qubit)
                ]
            ),
            max_depth=self.config.min_max_depth,
            error_target=self.config.error_target,
        )
        actual_matrix = self.min_basis(qubit).sequence_unitary(planned_min.gate_indices)
        return plain_gate_error(actual_matrix, target)

    def _nominal_idle_phases(self, qubit: int) -> List[float]:
        """Idle-gate Rz angles at the nominal frequency of a qubit's group."""
        sample = self.samples[qubit]
        shared = self.bitstreams_for(qubit)
        phases = []
        for stream in shared.idle_gates:
            phases.append(
                (
                    -2.0
                    * math.pi
                    * sample.nominal_frequency
                    * stream.num_bits
                    * stream.clock_period_ns
                )
                % (2.0 * math.pi)
            )
        return phases

    # -- reporting ---------------------------------------------------------------------

    def drift_summary(self) -> Dict[str, float]:
        """Aggregate drift statistics of the calibrated device."""
        drifts = np.array([sample.drift for sample in self.samples])
        return {
            "mean_abs_drift_ghz": float(np.mean(np.abs(drifts))),
            "max_abs_drift_ghz": float(np.max(np.abs(drifts))),
            "std_drift_ghz": float(np.std(drifts)),
        }


def build_group_bitstreams(config: DigiQConfig, group: int) -> GroupBitstreams:
    """Find the shared bitstreams stored for one SIMD group.

    DigiQ_opt stores a single Ry(pi/2) bitstream per group; DigiQ_min stores
    the Ry(pi/2) bitstream plus ``BS - 1`` idle (Z-rotation) gates drawn from
    :data:`MIN_IDLE_ANGLES`.
    """
    frequency = config.group_frequency(group)
    ry_stream = cached_ry_half_pi_bitstream(frequency, clock_period_ns=config.sfq_clock_ns)
    idle_gates: Tuple[SFQBitstream, ...] = ()
    if not config.is_opt:
        count = max(1, min(config.bitstreams - 1, len(MIN_IDLE_ANGLES)))
        idle_gates = tuple(
            find_rz_bitstream(frequency, angle, clock_period_ns=config.sfq_clock_ns)
            for angle in MIN_IDLE_ANGLES[:count]
        )
    return GroupBitstreams(
        group=group,
        nominal_frequency=frequency,
        ry_half_pi=ry_stream,
        idle_gates=idle_gates,
    )

"""Quantum Fourier transform benchmark.

The QFT is the canonical all-to-all workload: every qubit pair interacts via
a controlled-phase gate, which makes it the stress case for SWAP routing on
the nearest-neighbour grid (the Table IV benchmarks are all local or
quasi-local by comparison).  The generator emits the textbook circuit —
Hadamard plus a ladder of ``cp(pi / 2**k)`` rotations per qubit, followed by
the bit-reversal SWAP network — with an optional approximation degree that
drops the smallest rotations (Coppersmith's approximate QFT), the standard
lever for trading fidelity against depth.
"""

from __future__ import annotations

import math

from ..circuit import QuantumCircuit


def qft_circuit(
    num_qubits: int = 16,
    approximation_degree: int = 0,
    with_swaps: bool = True,
) -> QuantumCircuit:
    """Build the (approximate) quantum Fourier transform.

    Parameters
    ----------
    num_qubits:
        Register width.
    approximation_degree:
        Number of smallest-angle controlled-phase layers to drop; 0 is the
        exact QFT.  Must be in ``[0, num_qubits - 1]``.
    with_swaps:
        Append the final bit-reversal SWAP network (the part routing likes
        least); disable to emit the "QFT up to qubit reversal" variant.
    """
    if num_qubits < 1:
        raise ValueError("the QFT needs at least one qubit")
    if not 0 <= approximation_degree <= max(0, num_qubits - 1):
        raise ValueError(
            f"approximation_degree must be in [0, {max(0, num_qubits - 1)}], "
            f"got {approximation_degree}"
        )

    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits - 1, -1, -1):
        circuit.h(target)
        for offset, control in enumerate(range(target - 1, -1, -1), start=2):
            if offset > num_qubits - approximation_degree:
                break
            circuit.cp(2.0 * math.pi / (2.0**offset), control, target)
    if with_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    return circuit

"""Tests for the content-addressed on-disk result store."""

import pytest

from repro.runtime.store import ResultStore, canonical_json

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62


class TestResultStore:
    def test_miss_then_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY_A) is None
        assert KEY_A not in store
        payload = {"row": {"benchmark": "bv"}, "key": KEY_A}
        store.put(KEY_A, payload)
        assert KEY_A in store
        assert store.get(KEY_A) == payload

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        assert path.parent.name == KEY_A[:2]

    def test_keys_len_discard_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_B, {"x": 2})
        assert store.keys() == sorted([KEY_A, KEY_B])
        assert len(store) == 2
        assert store.discard(KEY_A) is True
        assert store.discard(KEY_A) is False
        assert store.clear() == 1
        assert len(store) == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        path.write_text("{not json", encoding="utf-8")
        assert store.get(KEY_A) is None
        assert KEY_A not in store  # membership agrees with get()

    def test_corrupt_entries_are_counted_and_warned_once(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        path_a = store.put(KEY_A, {"x": 1})
        store.put(KEY_B, {"x": 2})
        path_a.write_text("{torn", encoding="utf-8")
        store.path_for(KEY_B).write_text("{also torn", encoding="utf-8")
        assert store.stats()["corrupt"] == 0  # stats scans never skew the count
        with caplog.at_level("WARNING", logger="repro.runtime.store"):
            assert store.get(KEY_A) is None
            assert store.get(KEY_B) is None
            assert store.get(KEY_A) is None
        assert store.stats()["corrupt"] == 3
        # One warning per store instance, naming the first offending path.
        warnings = [r for r in caplog.records if r.levelname == "WARNING"]
        assert len(warnings) == 1
        assert str(path_a) in warnings[0].getMessage()

    def test_fresh_instance_warns_again(self, tmp_path, caplog):
        path = ResultStore(tmp_path).put(KEY_A, {"x": 1})
        path.write_text("{torn", encoding="utf-8")
        for _ in range(2):  # the warning is per instance, not per process
            store = ResultStore(tmp_path)
            with caplog.at_level("WARNING", logger="repro.runtime.store"):
                assert store.get(KEY_A) is None
            assert store.stats()["corrupt"] == 1
        assert sum(r.levelname == "WARNING" for r in caplog.records) == 2

    def test_put_replaces_atomically(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1})
        store.put(KEY_A, {"x": 2})
        assert store.get(KEY_A) == {"x": 2}
        # no stray temp files left behind
        assert all(not p.name.endswith(".tmp") for p in tmp_path.rglob("*"))

    @pytest.mark.parametrize("bad", ["", "xy", "ZZ" + "0" * 62, "../escape"])
    def test_malformed_keys_rejected(self, tmp_path, bad):
        with pytest.raises(ValueError):
            ResultStore(tmp_path).path_for(bad)


class TestStatsAndPrune:
    def _put(self, store, key, schema, mtime=None):
        path = store.put(key, {"schema": schema, "x": key[:4]})
        if mtime is not None:
            import os

            os.utime(path, (mtime, mtime))
        return path

    def test_stats_counts_entries_bytes_and_schemas(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.stats() == {
            "root": str(tmp_path),
            "entries": 0,
            "total_bytes": 0,
            "corrupt": 0,
            "schema_versions": {},
        }
        self._put(store, KEY_A, schema=4)
        self._put(store, KEY_B, schema=5)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] == sum(
            p.stat().st_size for p in tmp_path.rglob("*.json")
        )
        assert stats["schema_versions"] == {"4": 1, "5": 1}

    def test_stats_flags_unreadable_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._put(store, KEY_A, schema=5)
        path.write_text("{torn", encoding="utf-8")
        assert store.stats()["schema_versions"] == {"unreadable": 1}

    def test_prune_evicts_oldest_first_by_entry_count(self, tmp_path):
        store = ResultStore(tmp_path)
        self._put(store, KEY_A, schema=5, mtime=100.0)  # oldest
        self._put(store, KEY_B, schema=5, mtime=200.0)
        removed = store.prune(max_entries=1)
        assert removed == [KEY_A]
        assert store.keys() == [KEY_B]

    def test_prune_enforces_byte_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        path_a = self._put(store, KEY_A, schema=5, mtime=100.0)
        size = path_a.stat().st_size
        self._put(store, KEY_B, schema=5, mtime=200.0)
        assert store.prune(max_bytes=size) == [KEY_A]
        assert store.prune(max_bytes=0) == [KEY_B]
        assert store.keys() == []

    def test_prune_without_limits_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        self._put(store, KEY_A, schema=5)
        assert store.prune() == []
        assert len(store) == 1

    def test_prune_rejects_negative_limits(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="max_entries"):
            store.prune(max_entries=-1)
        with pytest.raises(ValueError, match="max_bytes"):
            store.prune(max_bytes=-5)

    def test_prune_keep_protects_entries_regardless_of_age(self, tmp_path):
        store = ResultStore(tmp_path)
        self._put(store, KEY_A, schema=5, mtime=100.0)  # oldest, but protected
        self._put(store, KEY_B, schema=5, mtime=200.0)
        removed = store.prune(max_entries=0, keep=[KEY_A])
        assert removed == [KEY_B]
        assert store.keys() == [KEY_A]
        # with everything protected, a prune may legitimately end over-limit
        assert store.prune(max_entries=0, keep=[KEY_A]) == []
        assert store.keys() == [KEY_A]


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

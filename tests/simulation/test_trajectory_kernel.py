"""Tests of the composed-permutation trajectory kernel and its building
blocks: the in-place gate kernels, the fused Pauli-kick injection, and the
program's exact agreement with op-by-op application."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.simulator import apply_matrix, apply_matrix_inplace
from repro.simulation import NoiseModel
from repro.simulation.trajectories import (
    _PAULIS,
    _build_program,
    _inject_kicks,
    _Segment,
    advance_noisy_batch,
    fuse_circuit,
)

GATES_1Q = [("h", 0), ("x", 0), ("y", 0), ("z", 0), ("s", 0), ("sdg", 0),
            ("t", 0), ("sx", 0), ("rx", 1), ("ry", 1), ("rz", 1), ("p", 1),
            ("u3", 3)]
GATES_2Q = [("cx", 0), ("cz", 0), ("swap", 0), ("cp", 1), ("rzz", 1)]


def random_circuit(rng, num_qubits, depth):
    circuit = QuantumCircuit(num_qubits)
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < 0.35:
            name, num_params = GATES_2Q[int(rng.integers(len(GATES_2Q)))]
            qubits = rng.choice(num_qubits, size=2, replace=False).tolist()
        else:
            name, num_params = GATES_1Q[int(rng.integers(len(GATES_1Q)))]
            qubits = [int(rng.integers(num_qubits))]
        params = tuple(float(rng.uniform(-np.pi, np.pi)) for _ in range(num_params))
        circuit.add(name, qubits, params)
    return circuit


def reference_advance(ops, num_qubits, batch, rng, cumweights, inplace):
    """Op-by-op evolution, with either kernel, kick stream as the fast path."""
    states = np.zeros((batch, 1 << num_qubits), dtype=complex)
    states[:, 0] = 1.0
    kicks = 0
    apply = apply_matrix_inplace if inplace else apply_matrix
    for op in ops:
        states = apply(states, op.matrix, op.qubits, num_qubits)
        for qubit, prob in zip(op.qubits, op.kick_probs):
            if prob <= 0.0:
                continue
            hit = rng.random(batch) < prob
            pick = np.minimum(np.searchsorted(cumweights, rng.random(batch)), 2)
            if not hit.any():
                continue
            kicks += _inject_kicks(states, num_qubits, qubit, hit, pick)
    return states, kicks


class TestInPlaceKernels:
    def rand_state(self, rng, num_qubits, batch=3):
        shape = (batch, 1 << num_qubits)
        return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)

    def test_diag_perm_dense1_match_apply_matrix(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(2, 7))
            qubits = tuple(rng.choice(n, size=2, replace=False).tolist())
            diag = np.diag(np.exp(1j * rng.uniform(-np.pi, np.pi, 4)))
            perm = np.zeros((4, 4), complex)
            for row, col in enumerate(rng.permutation(4)):
                perm[row, col] = np.exp(1j * rng.uniform(-np.pi, np.pi))
            dense1 = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
            for matrix, targets in (
                (diag, qubits), (perm, qubits), (dense1, (qubits[0],))
            ):
                state = self.rand_state(rng, n)
                got = apply_matrix_inplace(state.copy(), matrix, targets, n)
                want = apply_matrix(state.copy(), matrix, targets, n)
                assert np.allclose(got, want, rtol=0, atol=1e-12)

    def test_mutates_in_place_on_fast_paths(self):
        rng = np.random.default_rng(8)
        state = self.rand_state(rng, 3)
        out = apply_matrix_inplace(state, np.diag([1.0, -1.0]), (1,), 3)
        assert out is state

    def test_non_contiguous_input_falls_back(self):
        rng = np.random.default_rng(9)
        state = self.rand_state(rng, 3, batch=4)[::2]
        assert not state.flags.c_contiguous
        out = apply_matrix_inplace(state, np.diag([1.0, 1j]), (0,), 3)
        want = apply_matrix(np.ascontiguousarray(state), np.diag([1.0, 1j]), (0,), 3)
        assert np.array_equal(out, want)


class TestInjectKicks:
    def test_matches_masked_pauli_application(self):
        rng = np.random.default_rng(3)
        for num_qubits, qubit in ((1, 0), (3, 1), (4, 3)):
            batch = 6
            shape = (batch, 1 << num_qubits)
            states = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            hit = rng.random(batch) < 0.5
            pick = rng.integers(0, 3, size=batch)
            want = states.copy()
            for row in range(batch):
                if hit[row]:
                    want[row] = apply_matrix(
                        want[row], _PAULIS[pick[row]], (qubit,), num_qubits
                    )
            got = states.copy()
            kicks = _inject_kicks(got, num_qubits, qubit, hit, pick)
            assert kicks == int(hit.sum())
            assert np.allclose(got, want, atol=1e-12)

    def test_no_hits_is_identity(self):
        states = np.full((2, 4), 0.5 + 0.0j)
        before = states.copy()
        kicks = _inject_kicks(
            states, 2, 0, np.zeros(2, dtype=bool), np.zeros(2, dtype=np.intp)
        )
        assert kicks == 0
        assert np.array_equal(states, before)


class TestProgramKernel:
    def make_ops(self, rng, num_qubits, depth, single_error=0.08, cz_error=0.15):
        circuit = random_circuit(rng, num_qubits, depth)
        noise = NoiseModel.uniform(
            num_qubits, single_qubit_error=single_error, cz_error=cz_error
        )
        return tuple(fuse_circuit(circuit, noise)), noise.kick_cumulative_weights()

    def test_program_compiles_permutation_runs_into_segments(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cz(1, 2).swap(0, 2).x(1).t(2)
        ops = tuple(fuse_circuit(circuit, NoiseModel.uniform(3)))
        program = _build_program(ops, 3)
        assert any(isinstance(item, _Segment) for item in program.items)

    def test_matches_in_place_reference_exactly(self):
        """The program's gathers and unit-phase multiplies are exact: every
        amplitude equals op-by-op in-place application (np.array_equal — only
        the sign of IEEE zeros may differ through phase composition)."""
        master = np.random.default_rng(20260808)
        for _ in range(20):
            n = int(master.integers(1, 7))
            ops, cumweights = self.make_ops(master, n, int(master.integers(3, 40)))
            seed = int(master.integers(2**31))
            batch = int(master.integers(1, 9))
            rng_a = np.random.default_rng(seed)
            got, kicks_got = advance_noisy_batch(ops, n, batch, rng_a, cumweights)
            rng_b = np.random.default_rng(seed)
            want, kicks_want = reference_advance(
                ops, n, batch, rng_b, cumweights, inplace=True
            )
            assert kicks_got == kicks_want
            assert rng_a.bit_generator.state == rng_b.bit_generator.state
            assert np.array_equal(got, want)

    def test_matches_legacy_apply_matrix_reference(self):
        """Against the pre-optimisation op-by-op apply_matrix evolution the
        kernel agrees to float rounding, with an identical kick stream."""
        master = np.random.default_rng(99)
        for _ in range(10):
            n = int(master.integers(2, 7))
            ops, cumweights = self.make_ops(master, n, int(master.integers(5, 30)))
            seed = int(master.integers(2**31))
            got, kicks_got = advance_noisy_batch(
                ops, n, 5, np.random.default_rng(seed), cumweights
            )
            want, kicks_want = reference_advance(
                ops, n, 5, np.random.default_rng(seed), cumweights, inplace=False
            )
            assert kicks_got == kicks_want
            assert np.allclose(got, want, rtol=0, atol=1e-12)

    def test_states_are_normalised(self):
        master = np.random.default_rng(5)
        ops, cumweights = self.make_ops(master, 4, 20)
        states, _ = advance_noisy_batch(
            ops, 4, 8, np.random.default_rng(1), cumweights
        )
        assert np.allclose(np.linalg.norm(states, axis=1), 1.0, atol=1e-9)

    def test_kick_stream_independent_of_hits(self):
        """Zero-noise and high-noise runs consume the same number of draws
        per site, so the stream position never depends on hit outcomes."""
        master = np.random.default_rng(17)
        circuit = random_circuit(master, 3, 15)
        quiet = tuple(fuse_circuit(circuit, NoiseModel.uniform(3, 1e-12, 1e-12)))
        loud = tuple(fuse_circuit(circuit, NoiseModel.uniform(3, 0.4, 0.4)))
        cw_quiet = NoiseModel.uniform(3, 1e-12, 1e-12).kick_cumulative_weights()
        cw_loud = NoiseModel.uniform(3, 0.4, 0.4).kick_cumulative_weights()
        rng_a = np.random.default_rng(2)
        advance_noisy_batch(quiet, 3, 4, rng_a, cw_quiet)
        rng_b = np.random.default_rng(2)
        advance_noisy_batch(loud, 3, 4, rng_b, cw_loud)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestKickWeights:
    def test_cumulative_weights_end_at_exactly_one(self):
        for weights in ((1.0, 1.0, 2.0), (0.3, 0.3, 0.1), (1e-9, 1.0, 1e-9)):
            model = NoiseModel(num_qubits=1, pauli_weights=weights)
            cumweights = model.kick_cumulative_weights()
            assert cumweights[-1] == 1.0
            assert np.all(np.diff(cumweights) >= 0)

    def test_draw_at_upper_edge_cannot_escape_pauli_table(self):
        """Even with a cumulative array ending a few ulp below 1.0 a maximal
        draw is clipped into the table instead of indexing past it."""
        cumweights = np.array([0.25, 0.5, 1.0 - 1e-16])
        pick = np.minimum(
            np.searchsorted(cumweights, np.array([0.999999, 1.0 - 1e-17])), 2
        )
        assert pick.max() <= 2
        states = np.full((2, 2), np.sqrt(0.5) + 0j)
        kicks = _inject_kicks(
            states, 1, 0, np.ones(2, dtype=bool), pick.astype(np.intp)
        )
        assert kicks == 2

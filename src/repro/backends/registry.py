"""The string-keyed backend registry.

``get_backend("digiq-opt8")`` is how every layer above the core names a
device.  Three kinds of names resolve:

* **fixed entries** — the built-in devices below plus anything added with
  :func:`register_backend`;
* **the DigiQ family** — any ``digiq-<variant><BS>[@g<G>]`` name (e.g.
  ``digiq-opt16@g4``) materialises the matching grid device on demand, so
  the whole Fig. 8 design space is addressable without pre-registering it;
* **legacy config specs** — the CLI's historical ``opt8`` / ``min2`` /
  ``opt16@g4`` strings resolve to the corresponding ``digiq-*`` backend,
  keeping old command lines and stored sweep definitions working.

The non-paper devices (``digiq-line``, ``digiq-heavy-hex``,
``digiq-torus``, ``cryo-cmos-grid``) carry a frozen calibration seed: their targets embed
per-qubit/per-coupler error rates, and noisy sweeps simulate those rates via
:meth:`NoiseModel.from_target` instead of re-sampling a device per sweep.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Union

from ..core.architecture import DigiQConfig
from ..hardware.controller_designs import ControllerDesign
from .backend import Backend

#: Default device size of the paper's evaluation grid (32 x 32).
PAPER_DEVICE_QUBITS = 1024

_DIGIQ_NAME_RE = re.compile(r"^digiq-(opt|min)(\d+)(?:@g(\d+))?$")
_LEGACY_SPEC_RE = re.compile(r"^(opt|min)(\d+)(?:@g(\d+))?$")


class BackendNotFoundError(KeyError):
    """Raised when a backend name matches nothing in the registry."""


def _wrap_digiq_config(config: DigiQConfig, name: str) -> Backend:
    """The single construction site for DigiQ grid-family backends."""
    return Backend(
        name=name,
        topology="grid",
        config=config,
        controller=ControllerDesign(
            variant=f"digiq_{config.variant}",
            groups=config.groups,
            bitstreams=config.bitstreams,
        ),
        description=f"{config.label} on the paper's square grid (Sec. VI-B)",
        default_qubits=PAPER_DEVICE_QUBITS,
    )


def _digiq_name(config: DigiQConfig, explicit_groups: bool) -> str:
    suffix = f"@g{config.groups}" if explicit_groups else ""
    return f"digiq-{config.variant}{config.bitstreams}{suffix}"


def _digiq_backend(
    variant: str, bitstreams: int, groups: Optional[int] = None
) -> Backend:
    """Materialise one member of the DigiQ grid family."""
    if bitstreams < 1:
        raise ValueError(
            f"bad DigiQ backend: BS must be >= 1, got {bitstreams} "
            "(specs like 'opt0' are invalid)"
        )
    if groups is not None and groups < 1:
        raise ValueError(
            f"bad DigiQ backend: group count must be >= 1, got {groups} "
            "(specs like '@g0' are invalid)"
        )
    kwargs = {"bitstreams": bitstreams}
    if groups is not None:
        kwargs["groups"] = groups
    config = DigiQConfig.opt(**kwargs) if variant == "opt" else DigiQConfig.minimal(**kwargs)
    return _wrap_digiq_config(config, _digiq_name(config, explicit_groups=groups is not None))


def _line_backend() -> Backend:
    config = DigiQConfig.opt(bitstreams=8)
    return Backend(
        name="digiq-line",
        topology="line",
        config=config,
        controller=ControllerDesign(variant="digiq_opt", groups=2, bitstreams=8),
        description="DigiQ_opt(BS=8) driving a 1-D chain (unique-path routing bound)",
        default_qubits=64,
        calibration_seed=11,
    )


def _heavy_hex_backend() -> Backend:
    config = DigiQConfig.opt(bitstreams=8)
    return Backend(
        name="digiq-heavy-hex",
        topology="heavy_hex",
        config=config,
        controller=ControllerDesign(variant="digiq_opt", groups=2, bitstreams=8),
        description="DigiQ_opt(BS=8) on a heavy-hex-style lattice (sparse rungs)",
        default_qubits=64,
        calibration_seed=13,
    )


def _torus_backend() -> Backend:
    config = DigiQConfig.opt(bitstreams=8)
    return Backend(
        name="digiq-torus",
        topology="torus",
        config=config,
        controller=ControllerDesign(variant="digiq_opt", groups=2, bitstreams=8),
        description="DigiQ_opt(BS=8) on a periodic grid (wrap-around couplers, no edge effects)",
        default_qubits=64,
        calibration_seed=19,
    )


def _cryo_cmos_backend() -> Backend:
    # Near-MIMD microwave control: many groups and a wide stored gate set
    # approximate per-qubit arbitrary rotations in the SIMD execution model.
    config = DigiQConfig.opt(groups=4, bitstreams=16)
    return Backend(
        name="cryo-cmos-grid",
        topology="grid",
        config=config,
        controller=ControllerDesign(variant="cryo_cmos"),
        description="Cryo-CMOS 4 K controller on the square grid (Sec. III-A baseline)",
        default_qubits=512,
        calibration_seed=17,
    )


#: Built-in factories; resolved lazily so importing the package stays cheap.
_BUILTIN_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "digiq-opt8": lambda: _digiq_backend("opt", 8),
    "digiq-opt16": lambda: _digiq_backend("opt", 16),
    "digiq-min2": lambda: _digiq_backend("min", 2),
    "digiq-min4": lambda: _digiq_backend("min", 4),
    "digiq-line": _line_backend,
    "digiq-heavy-hex": _heavy_hex_backend,
    "digiq-torus": _torus_backend,
    "cryo-cmos-grid": _cryo_cmos_backend,
}

#: User-registered backends (name -> factory); takes precedence over built-ins.
_REGISTERED: Dict[str, Callable[[], Backend]] = {}


def register_backend(
    backend: Union[Backend, Callable[[], Backend]],
    name: Optional[str] = None,
    overwrite: bool = False,
) -> str:
    """Add a backend (or zero-argument factory) to the registry.

    Returns the registered name.  Pass ``overwrite=True`` to replace an
    existing entry; shadowing a built-in is always an explicit choice.
    """
    if isinstance(backend, Backend):
        resolved_name = name or backend.name
        factory: Callable[[], Backend] = lambda: backend  # noqa: E731
    else:
        if name is None:
            raise ValueError("a factory registration needs an explicit name")
        resolved_name = name
        factory = backend
    if not overwrite and (resolved_name in _REGISTERED or resolved_name in _BUILTIN_FACTORIES):
        raise ValueError(
            f"backend '{resolved_name}' already registered; pass overwrite=True to replace"
        )
    _REGISTERED[resolved_name] = factory
    return resolved_name


def unregister_backend(name: str) -> bool:
    """Remove a user-registered backend; returns whether it existed."""
    return _REGISTERED.pop(name, None) is not None


def get_backend(name: Union[str, Backend, DigiQConfig]) -> Backend:
    """Resolve a backend name (or legacy config spec, or objects) to a Backend.

    Accepts registry names (``"digiq-opt8"``, ``"cryo-cmos-grid"``), any
    DigiQ-family name (``"digiq-opt16@g4"``), legacy config specs
    (``"opt8"``, ``"min2"``, ``"opt16@g4"``), :class:`Backend` instances
    (returned as-is) and :class:`DigiQConfig` objects (wrapped into the
    matching DigiQ grid backend).
    """
    if isinstance(name, Backend):
        return name
    if isinstance(name, DigiQConfig):
        # Wrap the config as given — custom fields (clock, error target, ...)
        # are preserved, and enter the backend's cache identity.
        return _wrap_digiq_config(
            name, _digiq_name(name, explicit_groups=name.groups != 2)
        )
    key = name.strip().lower()
    factory = _REGISTERED.get(key) or _BUILTIN_FACTORIES.get(key)
    if factory is not None:
        return factory()
    match = _DIGIQ_NAME_RE.match(key) or _LEGACY_SPEC_RE.match(key)
    if match:
        variant, bitstreams, groups = match.group(1), int(match.group(2)), match.group(3)
        return _digiq_backend(variant, bitstreams, None if groups is None else int(groups))
    raise BackendNotFoundError(
        f"unknown backend '{name}'; known: {', '.join(backend_names())} "
        "(or any digiq-<variant><BS>[@g<G>] name / legacy <variant><BS>[@g<G>] spec)"
    )


def backend_names() -> List[str]:
    """Names of all fixed registry entries (built-in plus registered)."""
    return sorted(set(_BUILTIN_FACTORIES) | set(_REGISTERED))


def list_backends() -> List[Backend]:
    """All fixed registry entries, resolved, sorted by name."""
    return [get_backend(name) for name in backend_names()]

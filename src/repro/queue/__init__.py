"""``repro.queue`` — the durable, power-aware job-queue service.

The subsystem promoting :class:`~repro.primitives.job.JobHandle` from
in-process threads to a multi-client daemon:

* :mod:`repro.queue.model` — durable job records, spec wire payloads, and
  cost-model power pricing;
* :mod:`repro.queue.store` — the on-disk queue (one JSON file per job,
  atomic rename transitions, advisory ``fcntl`` locking, crash recovery);
* :mod:`repro.queue.scheduler` — admission against the paper's 10 W fridge
  budget with priority classes, EDD ordering, and weighted fair share;
* :mod:`repro.queue.server` — the ``repro serve`` HTTP/JSON daemon;
* :mod:`repro.queue.client` — :class:`QueueClient` /
  :class:`RemoteJobHandle`, the local-handle contract over HTTP;
* :mod:`repro.queue.cli` — ``repro serve`` and ``repro queue`` shells.

The server and client are intentionally import-light: importing this
package pulls in neither the HTTP stack nor the execution stack.
"""

from .model import PRIORITIES, QueueJob, build_job, job_power_w, spec_payload
from .store import QueueStore, queue_lock, resolve_queue_root

__all__ = [
    "PRIORITIES",
    "QueueJob",
    "QueueStore",
    "build_job",
    "job_power_w",
    "queue_lock",
    "resolve_queue_root",
    "spec_payload",
    "QueueClient",
    "RemoteJobHandle",
    "QueueService",
]


def __getattr__(name: str):
    # Lazy heavy imports: QueueClient/RemoteJobHandle (urllib) and
    # QueueService (execution stack) load on first touch.
    if name in ("QueueClient", "RemoteJobHandle", "QueueServerError"):
        from . import client

        return getattr(client, name)
    if name in ("QueueService", "order_candidates"):
        from . import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module 'repro.queue' has no attribute '{name}'")

"""SFQ/DC current-generator model (Fig. 4 of the paper).

The DigiQ two-qubit gate needs an electrical current pulse that threads flux
through the tunable transmon's SQUID loop.  The paper generates this current
inside the fridge with an array of SFQ/DC converters feeding an R1/R2/C1
output network and a superconducting microstrip flex line to the quantum chip
(Fig. 4(a)); JSIM simulation of that circuit produces the rise/plateau/fall
waveform of Fig. 4(b), reaching roughly 1.1-1.2 mA with 25 converters enabled.

The paper's downstream analyses only consume that waveform, so this module
substitutes the JSIM transistor-level simulation with a first-order ODE model
of the same output network:

* each enabled SFQ/DC converter acts as a DC voltage source of value
  ``PHI0 * f_clk`` (one flux quantum released per clock period) behind its
  own series resistance ``R1``; the converters drive the output node in
  parallel, so enabling more converters stiffens the source without raising
  its open-circuit voltage;
* the load branch is ``R2`` in series with the superconducting microstrip
  flex line (modelled as an inductance ``L_flex``), shunted by the filter
  capacitor ``C1``.

With the paper's component values (R1 = R2 = 0.05 ohm, C1 = 10 nF, 25
converters, 25 GHz clock) the model reproduces the ~1 mA plateau amplitude
and the few-ns rise/fall of Fig. 4(b); the rise time is dominated by the
``L_flex / (R1_parallel + R2)`` time constant of the flex line.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..physics.constants import PHI0_MV_PS


@dataclass(frozen=True)
class CurrentGeneratorDesign:
    """Component values of the Fig. 4(a) current generator.

    Parameters
    ----------
    num_converters:
        Number of SFQ/DC converter blocks enabled (the paper enables 25).
    r1_ohm, r2_ohm:
        Per-converter source resistance and load resistance (0.05 ohm each in
        the paper).
    c1_nf:
        Filter capacitance (10 nF in the paper).
    clock_ghz:
        SFQ chip clock frequency driving the converters (25 GHz = 40 ps).
    flex_inductance_nh:
        Series inductance of the superconducting microstrip flex line to the
        quantum chip, in nH.
    """

    num_converters: int = 25
    r1_ohm: float = 0.05
    r2_ohm: float = 0.05
    c1_nf: float = 10.0
    clock_ghz: float = 25.0
    flex_inductance_nh: float = 0.05

    def __post_init__(self) -> None:
        if self.num_converters < 1:
            raise ValueError("need at least one SFQ/DC converter")
        if self.r1_ohm <= 0 or self.r2_ohm <= 0:
            raise ValueError("resistances must be positive")
        if self.c1_nf <= 0:
            raise ValueError("capacitance must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.flex_inductance_nh < 0:
            raise ValueError("flex-line inductance must be non-negative")

    @property
    def converter_voltage_mv(self) -> float:
        """DC voltage produced by one running SFQ/DC converter, in mV.

        An SFQ/DC converter releases one flux quantum per clock period, so its
        time-averaged output voltage is ``Phi0 * f_clk``.  With Phi0 in
        mV*ps and the clock in GHz (1/ns), the product needs a factor of
        1e-3 to land in mV (ps * GHz = 1e-3).
        """
        return PHI0_MV_PS * self.clock_ghz * 1e-3

    @property
    def source_voltage_mv(self) -> float:
        """Open-circuit voltage of the converter array.

        The converters drive the output node in parallel, so the open-circuit
        voltage is that of a single converter; adding converters lowers the
        effective source resistance instead.
        """
        return self.converter_voltage_mv

    @property
    def source_resistance_ohm(self) -> float:
        """Effective source resistance of the parallel converter array."""
        return self.r1_ohm / self.num_converters

    @property
    def steady_state_current_ma(self) -> float:
        """Plateau current into the load once the transient has settled, in mA.

        mV / ohm = mA, so no unit conversion is needed.  With the paper's
        component values this is just above 1 mA, matching Fig. 4(b).
        """
        return self.source_voltage_mv / (self.source_resistance_ohm + self.r2_ohm)

    @property
    def time_constant_ns(self) -> float:
        """Dominant time constant of the load-current transient, in ns.

        Two first-order effects contribute: the C1 filter charging through
        the parallel combination of source and load resistances
        (``ohm * nF = ns``), and the flex-line inductance charging through
        the total series resistance (``nH / ohm = ns``).  The latter
        dominates with the paper's component values and sets the few-ns rise
        of Fig. 4(b).
        """
        r_source = self.source_resistance_ohm
        rc = (r_source * self.r2_ohm) / (r_source + self.r2_ohm) * self.c1_nf
        rl = self.flex_inductance_nh / (r_source + self.r2_ohm)
        return rc + rl


@dataclass(frozen=True)
class CurrentWaveform:
    """A sampled current waveform.

    Attributes
    ----------
    times_ns:
        Sample times in ns (uniform spacing).
    currents_ma:
        Load current at each sample time, in mA.
    """

    times_ns: np.ndarray
    currents_ma: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times_ns, dtype=float)
        currents = np.asarray(self.currents_ma, dtype=float)
        if times.shape != currents.shape or times.ndim != 1:
            raise ValueError("times and currents must be 1-D arrays of equal length")
        object.__setattr__(self, "times_ns", times)
        object.__setattr__(self, "currents_ma", currents)

    @property
    def dt_ns(self) -> float:
        """Sample spacing in ns."""
        if self.times_ns.size < 2:
            return 0.0
        return float(self.times_ns[1] - self.times_ns[0])

    @property
    def duration_ns(self) -> float:
        """Total waveform duration in ns."""
        if self.times_ns.size == 0:
            return 0.0
        return float(self.times_ns[-1] - self.times_ns[0]) + self.dt_ns

    @property
    def peak_current_ma(self) -> float:
        """Maximum instantaneous current, in mA."""
        return float(self.currents_ma.max()) if self.currents_ma.size else 0.0

    def plateau_current_ma(self, fraction: float = 0.95) -> float:
        """Mean current over the samples above ``fraction`` of the peak."""
        if self.currents_ma.size == 0:
            return 0.0
        peak = self.peak_current_ma
        if peak <= 0:
            return 0.0
        mask = self.currents_ma >= fraction * peak
        return float(self.currents_ma[mask].mean())

    def rise_time_ns(self, low: float = 0.1, high: float = 0.9) -> float:
        """10-90 % (by default) rise time of the leading edge, in ns."""
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        peak = self.peak_current_ma
        if peak <= 0:
            return 0.0
        above_low = np.flatnonzero(self.currents_ma >= low * peak)
        above_high = np.flatnonzero(self.currents_ma >= high * peak)
        if above_low.size == 0 or above_high.size == 0:
            return 0.0
        return float(self.times_ns[above_high[0]] - self.times_ns[above_low[0]])

    def scaled(self, factor: float) -> "CurrentWaveform":
        """A copy with every current sample multiplied by ``factor``.

        Used to apply the sigma = 1 % current-generator amplitude error.
        """
        return CurrentWaveform(self.times_ns.copy(), self.currents_ma * factor)

    def resampled(self, dt_ns: float) -> "CurrentWaveform":
        """Linear resampling onto a uniform grid of spacing ``dt_ns``."""
        if dt_ns <= 0:
            raise ValueError("dt_ns must be positive")
        if self.times_ns.size == 0:
            return CurrentWaveform(np.array([]), np.array([]))
        start, stop = float(self.times_ns[0]), float(self.times_ns[-1])
        new_times = np.arange(start, stop + 0.5 * dt_ns, dt_ns)
        new_currents = np.interp(new_times, self.times_ns, self.currents_ma)
        return CurrentWaveform(new_times, new_currents)


def simulate_waveform(
    design: Optional[CurrentGeneratorDesign] = None,
    on_time_ns: float = 40.0,
    total_time_ns: float = 70.0,
    dt_ns: float = 0.05,
    start_time_ns: float = 5.0,
) -> CurrentWaveform:
    """Simulate the Fig. 4(b) current waveform.

    The SFQ/DC converters are switched on at ``start_time_ns`` and off again
    after ``on_time_ns``; the load current follows the first-order response of
    the R1/R2/C1 output network.  The defaults reproduce the 70 ns window of
    Fig. 4(b) with an approximately 40 ns plateau.
    """
    design = design or CurrentGeneratorDesign()
    if dt_ns <= 0:
        raise ValueError("dt_ns must be positive")
    if on_time_ns <= 0 or total_time_ns <= 0:
        raise ValueError("durations must be positive")
    if start_time_ns < 0:
        raise ValueError("start_time_ns must be non-negative")
    if start_time_ns + on_time_ns > total_time_ns:
        raise ValueError("the on-window must fit inside the total simulation window")

    times = np.arange(0.0, total_time_ns, dt_ns)
    i_ss = design.steady_state_current_ma
    tau = design.time_constant_ns
    currents = np.zeros_like(times)

    on = (times >= start_time_ns) & (times < start_time_ns + on_time_ns)
    currents[on] = i_ss * (1.0 - np.exp(-(times[on] - start_time_ns) / tau))

    off = times >= start_time_ns + on_time_ns
    if np.any(off):
        # Current at the moment the converters switch off.
        i_off = i_ss * (1.0 - math.exp(-on_time_ns / tau))
        currents[off] = i_off * np.exp(-(times[off] - (start_time_ns + on_time_ns)) / tau)

    return CurrentWaveform(times_ns=times, currents_ma=currents)


def cz_pulse_waveform(
    duration_ns: float = 60.0,
    design: Optional[CurrentGeneratorDesign] = None,
    dt_ns: float = 0.05,
    amplitude_scale: float = 1.0,
) -> CurrentWaveform:
    """A CZ flux pulse of total length ``duration_ns`` (the paper uses 60 ns).

    The converters are enabled for the whole window minus a short tail so the
    current has decayed by the end of the pulse; ``amplitude_scale`` applies
    the per-generator hardware error of the variability model.
    """
    if duration_ns <= 2.0:
        raise ValueError("CZ pulse must be longer than 2 ns")
    design = design or CurrentGeneratorDesign()
    tail_ns = min(6.0, 0.2 * duration_ns)
    waveform = simulate_waveform(
        design=design,
        on_time_ns=duration_ns - tail_ns,
        total_time_ns=duration_ns,
        dt_ns=dt_ns,
        start_time_ns=0.0,
    )
    if amplitude_scale != 1.0:
        waveform = waveform.scaled(amplitude_scale)
    return waveform

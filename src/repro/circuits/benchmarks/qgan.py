"""QGAN benchmark: quantum generative-adversarial-learning ansatz.

The paper's QGAN benchmark [Lloyd & Weedbrook, PRL 121, 040502] is a
variational circuit: a *generator* ansatz prepares a candidate distribution
and a *discriminator* ansatz processes the generator output together with a
bank of data qubits.  As in most NISQ evaluations, what matters to the
controller study is the circuit's structure — dense layers of parameterised
single-qubit rotations interleaved with entangling gates across all qubits —
because that structure produces high gate parallelism (which is exactly what
stresses a SIMD controller).

The generator/discriminator split is configurable; parameters are sampled
reproducibly from a seed, mimicking one training step's circuit.
"""

from __future__ import annotations

import numpy as np

from ..circuit import QuantumCircuit


def qgan_circuit(
    num_qubits: int = 32,
    num_layers: int = 4,
    discriminator_fraction: float = 0.5,
    seed: int = 7,
) -> QuantumCircuit:
    """Build one QGAN training-step circuit.

    Parameters
    ----------
    num_qubits:
        Total number of qubits (generator + discriminator register).
    num_layers:
        Number of rotation+entanglement layers in each ansatz.
    discriminator_fraction:
        Fraction of qubits assigned to the discriminator register.
    seed:
        Seed for the variational parameters.
    """
    if num_qubits < 2:
        raise ValueError("QGAN needs at least 2 qubits")
    if num_layers < 1:
        raise ValueError("QGAN needs at least one layer")
    if not 0.0 < discriminator_fraction < 1.0:
        raise ValueError("discriminator_fraction must be in (0, 1)")

    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"qgan_{num_qubits}")

    num_disc = max(1, int(round(num_qubits * discriminator_fraction)))
    num_gen = num_qubits - num_disc
    if num_gen < 1:
        num_gen, num_disc = 1, num_qubits - 1
    generator_qubits = list(range(num_gen))
    discriminator_qubits = list(range(num_gen, num_qubits))

    _ansatz(circuit, generator_qubits, num_layers, rng)
    _ansatz(circuit, discriminator_qubits, num_layers, rng)
    # Discriminator reads the generator output: entangle across the boundary.
    for offset, gen_qubit in enumerate(generator_qubits):
        disc_qubit = discriminator_qubits[offset % len(discriminator_qubits)]
        circuit.cx(gen_qubit, disc_qubit)
    _ansatz(circuit, discriminator_qubits, max(1, num_layers // 2), rng)
    return circuit


def _ansatz(circuit: QuantumCircuit, qubits, num_layers: int, rng: np.random.Generator) -> None:
    """Hardware-efficient ansatz: RY/RZ rotations + linear entangling layer."""
    for _ in range(num_layers):
        for qubit in qubits:
            circuit.ry(float(rng.uniform(0, 2 * np.pi)), qubit)
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), qubit)
        for first, second in zip(qubits[:-1], qubits[1:]):
            circuit.cz(first, second)
    for qubit in qubits:
        circuit.ry(float(rng.uniform(0, 2 * np.pi)), qubit)

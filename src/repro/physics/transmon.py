"""Transmon qubit models.

Two models are provided:

* :class:`Transmon` — a fixed-frequency Duffing-oscillator model truncated to a
  configurable number of levels (the paper uses six levels for single-qubit
  fidelity evaluation so that leakage is fully captured).
* :class:`AsymmetricTransmon` — a flux-tunable transmon built from two
  Josephson junctions with an asymmetry parameter.  The effective Josephson
  energy (and hence the qubit frequency) depends on the external flux, which
  is how the DigiQ two-qubit (CZ) gate is actuated: the SFQ/DC current
  generator drives a flux excursion that shifts the qubit frequency onto the
  |11> <-> |02> resonance.

Frequency conventions follow :mod:`repro.physics.constants`: plain frequencies
in GHz, times in ns, Hamiltonians expressed in angular units (rad/ns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .constants import DEFAULT_ANHARMONICITY_GHZ, TWO_PI
from .operators import destroy, number


@dataclass(frozen=True)
class Transmon:
    """A fixed-frequency transmon modelled as a Duffing oscillator.

    Parameters
    ----------
    frequency:
        Qubit |0> -> |1> transition frequency in GHz.
    anharmonicity:
        Anharmonicity ``alpha = f12 - f01`` in GHz (negative for transmons).
    levels:
        Number of oscillator levels kept in the truncation.
    """

    frequency: float
    anharmonicity: float = DEFAULT_ANHARMONICITY_GHZ
    levels: int = 6

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency}")
        if self.levels < 2:
            raise ValueError(f"at least two levels are required, got {self.levels}")

    @property
    def period_ns(self) -> float:
        """Qubit oscillation period in ns."""
        return 1.0 / self.frequency

    def level_frequencies(self) -> np.ndarray:
        """Energies of each level, expressed as frequencies in GHz.

        Level ``n`` sits at ``n * f01 + alpha * n(n-1)/2``.
        """
        n = np.arange(self.levels, dtype=float)
        return n * self.frequency + 0.5 * self.anharmonicity * n * (n - 1)

    def hamiltonian(self) -> np.ndarray:
        """Static Hamiltonian in angular units (rad/ns), diagonal in the Fock basis."""
        return TWO_PI * np.diag(self.level_frequencies()).astype(complex)

    def drive_operator(self) -> np.ndarray:
        """Charge-like drive operator ``-i (b - b†)`` coupling adjacent levels.

        An SFQ pulse deposits energy through the qubit's charge degree of
        freedom; in the Fock basis this corresponds (up to normalisation) to
        the ``y``-quadrature operator, which on the two-level subspace reduces
        to the Pauli-Y generator of the small per-pulse rotation.
        """
        b = destroy(self.levels)
        return -1j * (b - b.conj().T)

    def free_propagator(self, duration_ns: float) -> np.ndarray:
        """Free-evolution propagator ``exp(-i H t)`` for ``duration_ns`` ns."""
        phases = -TWO_PI * self.level_frequencies() * duration_ns
        return np.diag(np.exp(1j * phases)).astype(complex)

    def with_frequency(self, frequency: float) -> "Transmon":
        """A copy of this transmon with a different |0>-|1> frequency."""
        return replace(self, frequency=frequency)

    def number_operator(self) -> np.ndarray:
        """Number operator in the truncated Fock basis."""
        return number(self.levels)


@dataclass(frozen=True)
class AsymmetricTransmon:
    """A flux-tunable asymmetric transmon.

    The two parallel Josephson junctions with energies ``ej1`` and ``ej2``
    give an effective Josephson energy that depends on the external flux
    ``phi`` (in units of the flux quantum):

    ``EJ(phi) = EJ_sum * |cos(pi phi)| * sqrt(1 + d^2 tan^2(pi phi))``

    where ``d = (ej1 - ej2) / (ej1 + ej2)`` is the junction asymmetry.  In the
    transmon limit the qubit frequency follows
    ``f01(phi) ~ sqrt(8 EC EJ(phi)) - EC`` [Koch et al., PRA 76, 042319].

    Parameters
    ----------
    ej_sum:
        Total Josephson energy ``ej1 + ej2`` expressed in GHz.
    ec:
        Charging energy in GHz.
    asymmetry:
        Junction asymmetry ``d`` in [0, 1).
    levels:
        Truncation used when building Duffing models at a given flux.
    """

    ej_sum: float
    ec: float
    asymmetry: float = 0.1
    levels: int = 6

    def __post_init__(self) -> None:
        if self.ej_sum <= 0 or self.ec <= 0:
            raise ValueError("ej_sum and ec must be positive")
        if not 0.0 <= self.asymmetry < 1.0:
            raise ValueError(f"asymmetry must be in [0, 1), got {self.asymmetry}")

    def effective_ej(self, flux: float) -> float:
        """Effective Josephson energy (GHz) at external flux ``flux`` (in Phi0)."""
        c = math.cos(math.pi * flux)
        s = math.sin(math.pi * flux)
        return self.ej_sum * math.sqrt(c * c + (self.asymmetry * s) ** 2)

    def frequency(self, flux: float = 0.0) -> float:
        """Qubit |0>-|1> frequency in GHz at the given external flux."""
        ej = self.effective_ej(flux)
        value = math.sqrt(8.0 * ej * self.ec) - self.ec
        if value <= 0:
            raise ValueError(
                f"flux {flux} drives the transmon frequency non-positive "
                f"(EJ={ej:.3f} GHz, EC={self.ec:.3f} GHz)"
            )
        return value

    def anharmonicity(self) -> float:
        """Transmon anharmonicity, approximately ``-EC`` in GHz."""
        return -self.ec

    def max_frequency(self) -> float:
        """Frequency at the flux sweet spot (zero flux)."""
        return self.frequency(0.0)

    def min_frequency(self) -> float:
        """Frequency at half-flux, the lower sweet spot of an asymmetric transmon."""
        return self.frequency(0.5)

    def flux_for_frequency(self, target_frequency: float) -> float:
        """Invert the frequency-vs-flux curve on the branch ``flux in [0, 0.5]``.

        Raises ``ValueError`` if the target frequency is outside the tunable band.
        """
        f_max = self.max_frequency()
        f_min = self.min_frequency()
        if not f_min <= target_frequency <= f_max:
            raise ValueError(
                f"target frequency {target_frequency:.4f} GHz outside tunable band "
                f"[{f_min:.4f}, {f_max:.4f}] GHz"
            )
        lo, hi = 0.0, 0.5
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.frequency(mid) > target_frequency:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def duffing_model(self, flux: float = 0.0) -> Transmon:
        """A fixed-frequency :class:`Transmon` snapshot at the given flux."""
        return Transmon(
            frequency=self.frequency(flux),
            anharmonicity=self.anharmonicity(),
            levels=self.levels,
        )

    @staticmethod
    def from_frequency(
        frequency: float,
        anharmonicity: float = DEFAULT_ANHARMONICITY_GHZ,
        asymmetry: float = 0.1,
        levels: int = 6,
    ) -> "AsymmetricTransmon":
        """Construct an asymmetric transmon whose sweet-spot frequency is ``frequency``.

        The charging energy is set to ``-anharmonicity`` and the Josephson
        energy chosen such that ``frequency(0) == frequency``.
        """
        ec = abs(anharmonicity)
        if ec <= 0:
            raise ValueError("anharmonicity must be non-zero")
        ej_sum = (frequency + ec) ** 2 / (8.0 * ec)
        return AsymmetricTransmon(
            ej_sum=ej_sum, ec=ec, asymmetry=asymmetry, levels=levels
        )

    def with_ej_scale(self, scale: float) -> "AsymmetricTransmon":
        """A copy with the total Josephson energy scaled by ``scale``.

        Used by the variability model: a sigma = 0.2 % variation of each
        junction's Josephson energy is modelled as a scale factor applied to
        the total EJ, which shifts the sweet-spot frequency by roughly half
        the relative EJ change (about +-6 MHz at 5 GHz for 0.2 %).
        """
        if scale <= 0:
            raise ValueError(f"EJ scale must be positive, got {scale}")
        return replace(self, ej_sum=self.ej_sum * scale)


@dataclass(frozen=True)
class TransmonPairParameters:
    """Static parameters of a capacitively-coupled pair of transmons.

    Attributes
    ----------
    qubit_a, qubit_b:
        The two transmons.  ``qubit_b`` is the flux-tunable one whose
        frequency is excursed during the CZ gate.
    coupling:
        Capacitive (exchange) coupling strength in GHz.
    levels:
        Per-transmon truncation used in two-qubit simulations.
    """

    qubit_a: Transmon
    qubit_b: Transmon
    coupling: float = 0.010
    levels: int = 3

    def __post_init__(self) -> None:
        if self.coupling <= 0:
            raise ValueError(f"coupling must be positive, got {self.coupling}")
        if self.levels < 3:
            raise ValueError(
                "two-qubit simulations need at least 3 levels per transmon to "
                "capture the |11> <-> |02> interaction used by the CZ gate"
            )

    def detuning(self) -> float:
        """Frequency difference ``f_a - f_b`` in GHz."""
        return self.qubit_a.frequency - self.qubit_b.frequency

"""GHZ-phase benchmark: a low-entanglement workload for the sparse kernel.

One Hadamard opens a two-amplitude superposition, a CX ladder stretches it
into an ``n``-qubit GHZ core, and seeded layers of arbitrary ``rz`` phases
interleaved with further CX ladders dress it with non-Clifford structure —
without ever branching again.  The statevector therefore holds exactly two
nonzero amplitudes from the second gate to the last, at any register width:
the canonical circuit whose dense ``2**n`` simulation cost is pure waste,
and the workload ``repro bench --sparse`` uses to exercise the sparse
trajectory kernel past the dense 24-qubit ceiling.

The arbitrary phase angles keep the circuit out of the Clifford fast path,
so ``mode="auto"`` lands on the sparse kernel, not the stabilizer one.
"""

from __future__ import annotations

import numpy as np

from ..circuit import QuantumCircuit


def ghz_phase_circuit(
    num_qubits: int = 32,
    num_layers: int = 3,
    seed: int = 7,
) -> QuantumCircuit:
    """Build a GHZ state dressed with seeded phase/entangling layers.

    Parameters
    ----------
    num_qubits:
        Register width (>= 2); the support stays at two amplitudes
        regardless of this value.
    num_layers:
        Number of (rz layer, CX ladder) repetitions after the initial GHZ
        preparation; depth scales linearly.
    seed:
        Seeds the rz angles, so instances are reproducible.
    """
    if num_qubits < 2:
        raise ValueError("the GHZ-phase benchmark needs at least 2 qubits")
    if num_layers < 1:
        raise ValueError("need at least one phase layer")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for _ in range(num_layers):
        for qubit in range(num_qubits):
            circuit.rz(float(rng.uniform(0.0, 2.0 * np.pi)), qubit)
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    return circuit

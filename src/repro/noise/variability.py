"""Qubit- and hardware-variability models used in the paper's evaluation.

Section VI-B of the paper models frequency variation by giving each qubit an
asymmetric-transmon Hamiltonian whose Josephson energies vary with a relative
standard deviation of 0.2 % (normal distribution), which at the Table II
parking frequencies corresponds to roughly ±6 MHz of |0>-|1> frequency
fluctuation.  Hardware variability of the CZ actuation is modelled by a 1 %
(sigma) multiplicative error on each current generator's output.

:class:`VariabilityModel` samples these quantities deterministically from a
seed so experiments are reproducible, and produces per-qubit
:class:`QubitSample` records consumed by the calibration and error analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..physics.constants import DEFAULT_ANHARMONICITY_GHZ
from ..physics.transmon import AsymmetricTransmon, Transmon

#: Relative sigma of each qubit's Josephson-energy variation (paper: 0.2 %).
DEFAULT_EJ_SIGMA = 0.002

#: Relative sigma of each current generator's amplitude error (paper: 1 %).
DEFAULT_CURRENT_SIGMA = 0.01


@dataclass(frozen=True)
class QubitSample:
    """One sampled qubit: its nominal design point and its actual parameters.

    Attributes
    ----------
    index:
        Qubit index on the device.
    group:
        SIMD group the qubit belongs to (qubits in a group share a nominal
        frequency and the broadcast SFQ bitstreams).
    nominal_frequency:
        Design-time parking frequency in GHz (from Table II).
    actual_frequency:
        Sampled |0>-|1> frequency after EJ variation, in GHz.
    anharmonicity:
        Anharmonicity in GHz.
    """

    index: int
    group: int
    nominal_frequency: float
    actual_frequency: float
    anharmonicity: float = DEFAULT_ANHARMONICITY_GHZ

    @property
    def drift(self) -> float:
        """Frequency drift (actual - nominal) in GHz."""
        return self.actual_frequency - self.nominal_frequency

    def transmon(self, levels: int = 6) -> Transmon:
        """The actual (drifted) transmon model for physics simulations."""
        return Transmon(
            frequency=self.actual_frequency,
            anharmonicity=self.anharmonicity,
            levels=levels,
        )

    def nominal_transmon(self, levels: int = 6) -> Transmon:
        """The nominal (design-point) transmon model."""
        return Transmon(
            frequency=self.nominal_frequency,
            anharmonicity=self.anharmonicity,
            levels=levels,
        )


class VariabilityModel:
    """Samples per-qubit frequency variation and per-coupler hardware error.

    Parameters
    ----------
    ej_sigma:
        Relative standard deviation of the total Josephson energy of each
        qubit (0.002 in the paper).
    current_sigma:
        Relative standard deviation of each current generator's amplitude
        (0.01 in the paper).
    anharmonicity:
        Transmon anharmonicity in GHz.
    seed:
        Seed for the underlying random generator; the same seed always
        produces the same device sample.
    """

    def __init__(
        self,
        ej_sigma: float = DEFAULT_EJ_SIGMA,
        current_sigma: float = DEFAULT_CURRENT_SIGMA,
        anharmonicity: float = DEFAULT_ANHARMONICITY_GHZ,
        seed: Optional[int] = None,
    ):
        if ej_sigma < 0 or current_sigma < 0:
            raise ValueError("sigmas must be non-negative")
        self.ej_sigma = ej_sigma
        self.current_sigma = current_sigma
        self.anharmonicity = anharmonicity
        self._rng = np.random.default_rng(seed)

    # -- frequency sampling -------------------------------------------------------

    def sample_frequency(self, nominal_frequency: float) -> float:
        """Sample one qubit's actual frequency given its nominal parking frequency.

        The qubit is modelled as an asymmetric transmon whose sweet spot is at
        the nominal frequency; the sampled EJ scale shifts the sweet spot.
        Because the transmon frequency goes as ``sqrt(EJ)``, a relative EJ
        deviation of ``x`` produces a relative frequency deviation of about
        ``x / 2`` (≈ ±6 MHz for 0.2 % at ~5-6 GHz), matching the paper.
        """
        transmon = AsymmetricTransmon.from_frequency(
            nominal_frequency, anharmonicity=self.anharmonicity
        )
        scale = 1.0 + self._rng.normal(0.0, self.ej_sigma)
        scale = max(scale, 0.5)  # guard against absurd tail samples
        return transmon.with_ej_scale(scale).max_frequency()

    def sample_qubits(
        self,
        nominal_frequencies: Sequence[float],
        groups: Optional[Sequence[int]] = None,
    ) -> List[QubitSample]:
        """Sample a full device: one :class:`QubitSample` per nominal frequency.

        ``groups[i]`` assigns qubit ``i`` to a SIMD group; by default qubits
        with the same nominal frequency share a group (the paper's static
        grouping rule).
        """
        nominal = list(nominal_frequencies)
        if groups is None:
            unique = sorted(set(nominal))
            group_of = {f: g for g, f in enumerate(unique)}
            groups = [group_of[f] for f in nominal]
        else:
            groups = list(groups)
            if len(groups) != len(nominal):
                raise ValueError("groups must have the same length as nominal_frequencies")

        samples = []
        for index, (freq, group) in enumerate(zip(nominal, groups)):
            samples.append(
                QubitSample(
                    index=index,
                    group=group,
                    nominal_frequency=freq,
                    actual_frequency=self.sample_frequency(freq),
                    anharmonicity=self.anharmonicity,
                )
            )
        return samples

    # -- hardware error sampling --------------------------------------------------

    def sample_current_scale(self) -> float:
        """Multiplicative amplitude error of one current generator (mean 1.0)."""
        return float(max(1.0 + self._rng.normal(0.0, self.current_sigma), 0.0))

    def sample_current_scales(self, count: int) -> np.ndarray:
        """Amplitude errors for ``count`` current generators."""
        if count < 0:
            raise ValueError("count must be non-negative")
        scales = 1.0 + self._rng.normal(0.0, self.current_sigma, size=count)
        return np.maximum(scales, 0.0)

    # -- residual gate-error sampling ---------------------------------------------

    def sample_error_scales(self, count: int, sigma: float = 0.25) -> np.ndarray:
        """Multiplicative per-qubit gate-error spread (log-normal, median 1.0).

        Software calibration leaves each qubit a residual decomposition error
        near the configured target, but not exactly at it: bitstream quality
        differs from qubit to qubit.  These factors scale a base error rate
        into a long-tailed per-qubit distribution, as in Fig. 10(a); they are
        consumed by :meth:`repro.simulation.NoiseModel.sampled`.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        return np.exp(self._rng.normal(0.0, sigma, size=count))


def expected_frequency_fluctuation(
    nominal_frequency: float,
    ej_sigma: float = DEFAULT_EJ_SIGMA,
    anharmonicity: float = DEFAULT_ANHARMONICITY_GHZ,
) -> float:
    """One-sigma frequency fluctuation (GHz) implied by an EJ sigma.

    Useful for sanity checks: at ~6 GHz and 0.2 % EJ sigma this is ~6 MHz,
    which is the figure quoted in Sec. VI-B of the paper.
    """
    transmon = AsymmetricTransmon.from_frequency(nominal_frequency, anharmonicity=anharmonicity)
    up = transmon.with_ej_scale(1.0 + ej_sigma).max_frequency()
    down = transmon.with_ej_scale(1.0 - ej_sigma).max_frequency()
    return (up - down) / 2.0

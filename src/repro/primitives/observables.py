"""Pauli-string observables for the :class:`~repro.primitives.Estimator`.

A :class:`PauliObservable` is a real-weighted sum of Pauli strings over a
logical register.  Labels use the register's own qubit order: character ``i``
of a label is the Pauli acting on logical qubit ``i`` (so ``"ZIX"`` means Z
on qubit 0, identity on qubit 1, X on qubit 2).  Expectation values are
evaluated directly on (batched) statevectors via the circuits-layer
:func:`~repro.circuits.simulator.apply_matrix` kernel, optionally through a
logical-to-physical qubit map so compiled circuits can be scored without
undoing their routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.simulator import apply_matrix

#: Single-qubit Pauli matrices by label character.
_PAULI_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.diag([1.0, -1.0]).astype(complex),
}


@dataclass(frozen=True)
class PauliObservable:
    """A real-weighted sum of Pauli strings over one logical register.

    Attributes
    ----------
    terms:
        ``((label, coefficient), ...)`` pairs.  All labels must have the same
        length (the register width) and contain only ``I``/``X``/``Y``/``Z``;
        coefficients are real, so the observable is Hermitian and its
        expectation values are real numbers.
    """

    terms: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("an observable needs at least one Pauli term")
        normalized = []
        width = None
        for label, coefficient in self.terms:
            label = str(label).upper()
            unknown = set(label) - set(_PAULI_MATRICES)
            if unknown:
                raise ValueError(
                    f"bad Pauli label '{label}': unknown characters {sorted(unknown)}"
                )
            if width is None:
                width = len(label)
            elif len(label) != width:
                raise ValueError(
                    f"Pauli labels must share one register width; got lengths "
                    f"{width} and {len(label)}"
                )
            normalized.append((label, float(coefficient)))
        if width == 0:
            raise ValueError("Pauli labels must cover at least one qubit")
        object.__setattr__(self, "terms", tuple(normalized))

    # -- constructors ---------------------------------------------------------------

    @staticmethod
    def from_label(label: str, coefficient: float = 1.0) -> "PauliObservable":
        """A single Pauli string, e.g. ``PauliObservable.from_label("ZZ")``."""
        return PauliObservable(terms=((label, coefficient),))

    @staticmethod
    def from_terms(
        terms: Union[Mapping[str, float], Iterable[Tuple[str, float]]],
    ) -> "PauliObservable":
        """A weighted sum, e.g. ``from_terms({"ZZI": 0.5, "IZZ": 0.5})``."""
        pairs = terms.items() if isinstance(terms, Mapping) else terms
        return PauliObservable(terms=tuple((label, coeff) for label, coeff in pairs))

    # -- structure ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Width of the logical register the observable addresses."""
        return len(self.terms[0][0])

    @property
    def label(self) -> str:
        """Human-readable form, e.g. ``"0.5*ZZI + 0.5*IZZ"`` (or a bare string)."""
        if len(self.terms) == 1 and self.terms[0][1] == 1.0:
            return self.terms[0][0]
        return " + ".join(f"{coeff:g}*{label}" for label, coeff in self.terms)

    # -- evaluation -----------------------------------------------------------------

    def expectation(
        self,
        state: np.ndarray,
        num_qubits: Optional[int] = None,
        qubit_map: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Expectation value ``<state|O|state>`` of a (batched) statevector.

        Parameters
        ----------
        state:
            Statevector of shape ``(..., 2**num_qubits)``; leading axes are
            batch dimensions and each batch entry is scored independently.
        num_qubits:
            Width of the register ``state`` describes (inferred from the
            state's last axis when omitted).
        qubit_map:
            Position of each logical qubit inside the state's register:
            ``qubit_map[i]`` is the physical index holding logical qubit
            ``i``.  Identity when omitted.  This is how compiled circuits
            are scored in place — pass the final layout's mapping.

        Returns the real expectation values with the state's batch shape
        (a 0-d array for a single statevector — use ``float(...)``).
        """
        state = np.asarray(state, dtype=complex)
        if num_qubits is None:
            dim = state.shape[-1]
            num_qubits = int(dim).bit_length() - 1
        if state.shape[-1] != 2**num_qubits:
            raise ValueError(
                f"state dimension {state.shape[-1]} does not match {num_qubits} qubits"
            )
        positions = (
            list(range(self.num_qubits)) if qubit_map is None else [int(q) for q in qubit_map]
        )
        if len(positions) != self.num_qubits:
            raise ValueError(
                f"qubit map covers {len(positions)} qubits but the observable "
                f"addresses {self.num_qubits}"
            )
        for position in positions:
            if not 0 <= position < num_qubits:
                raise ValueError(f"mapped qubit {position} outside register of {num_qubits}")

        total = np.zeros(state.shape[:-1], dtype=float)
        for label, coefficient in self.terms:
            transformed = state
            for logical, pauli in enumerate(label):
                if pauli == "I":
                    continue
                transformed = apply_matrix(
                    transformed,
                    _PAULI_MATRICES[pauli],
                    (positions[logical],),
                    num_qubits,
                )
            value = np.sum(np.conj(state) * transformed, axis=-1)
            total = total + coefficient * np.real(value)
        return total

"""Regeneration of the paper's tables as structured data.

Each function returns a list of plain-dict rows so the benchmark harness and
the examples can print or assert on them directly:

* :func:`design_space_table` — Table I (qualitative design-space summary).
* :func:`parking_frequency_table_rows` — Table II (optimal parking
  frequencies and drift tolerance for Rz(phi) with N = 255).
* :func:`cell_library_table` — Table III (the RSFQ cell library).
* :func:`benchmark_table` — Table IV (the NISQ benchmark suite, with the
  instance sizes produced at a chosen device scale).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuits.benchmarks import TABLE_IV_NAMES, build_benchmark
from ..core.architecture import design_space_table as _design_space_table
from ..core.rz_delay import parking_frequency_table
from ..hardware.cells import table3_rows

#: Human-readable benchmark descriptions (Table IV).
BENCHMARK_DESCRIPTIONS: Dict[str, str] = {
    "qgan": "Quantum generative adversarial learning network",
    "ising": "Linear Ising model spin chain simulation",
    "bv": "Bernstein-Vazirani algorithm",
    "add1": "Ripple-carry adder (Cuccaro)",
    "add2": "Parallel carry-lookahead adder",
    "sqrt": "Square root via Grover search",
}


def design_space_table() -> List[Dict[str, str]]:
    """Table I rows."""
    return _design_space_table()


def parking_frequency_table_rows(
    error_threshold: float = 1e-4,
    n_slots: int = 255,
    frequencies: Optional[Sequence[float]] = None,
) -> List[Dict[str, float]]:
    """Table II rows: parking frequency, drift tolerance, worst-case Rz error."""
    return [row.as_row() for row in parking_frequency_table(
        frequencies=frequencies, error_threshold=error_threshold, n_slots=n_slots
    )]


def cell_library_table() -> List[Dict[str, float]]:
    """Table III rows: RSFQ cell name, area, JJ count, delay."""
    return table3_rows()


def benchmark_table(num_qubits: int = 64, seed: int = 7) -> List[Dict[str, object]]:
    """Table IV rows, with circuit statistics at the chosen device scale.

    Deliberately restricted to the paper's six benchmarks — the extended
    suite (QFT, QAOA) lives outside Table IV.
    """
    rows = []
    for name in TABLE_IV_NAMES:
        circuit = build_benchmark(name, num_qubits=num_qubits, seed=seed)
        rows.append(
            {
                "benchmark": name,
                "description": BENCHMARK_DESCRIPTIONS[name],
                "qubits": circuit.num_qubits,
                "gates": len(circuit),
                "two_qubit_gates": circuit.num_two_qubit_gates(),
                "depth": circuit.depth(),
            }
        )
    return rows

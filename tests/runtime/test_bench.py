"""Tests for the ``repro bench`` harness and its regression gate."""

import json

import pytest

from repro import telemetry
from repro.runtime.bench import (
    BENCH_SCHEMA,
    QUICK_PROFILE,
    bench_main,
    check_regression,
    pass_time_table,
    run_bench,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


class TestRunBench:
    def test_quick_report_shape(self):
        report = run_bench(benchmarks=("bv",), quick=True, rev="test")
        assert report["schema"] == BENCH_SCHEMA
        assert report["rev"] == "test"
        assert report["quick"] is True
        (row,) = report["compile"]
        assert row["benchmark"] == "bv"
        assert row["repeats"] == QUICK_PROFILE["repeats"]
        assert row["min_s"] > 0
        assert row["throughput_per_s"] == pytest.approx(1.0 / row["min_s"])
        assert "fidelity" not in report
        # The embedded telemetry window saw the compile spans and counters;
        # the default opt level is below 2, so the compile_o2 section adds a
        # second set of timed compilations.
        span_names = {entry["span"] for entry in report["telemetry"]["spans"]}
        assert "compile.circuit" in span_names
        assert (
            report["telemetry"]["metrics"]["counters"]["compile.circuits"]
            == 2 * QUICK_PROFILE["repeats"]
        )
        json.dumps(report)  # JSON-able end to end

    def test_fidelity_rows_carry_trajectory_throughput(self):
        report = run_bench(benchmarks=("bv",), quick=True, fidelity=True)
        (row,) = report["fidelity"]
        assert row["trajectories"] == QUICK_PROFILE["trajectories"]
        assert row["throughput_traj_per_s"] > 0
        assert 0.0 <= row["state_fidelity"] <= 1.0
        span_names = {entry["span"] for entry in report["telemetry"]["spans"]}
        assert {"sim.run", "sim.batch"} <= span_names

    def test_compile_o2_rows_shared_when_already_at_o2(self):
        report = run_bench(benchmarks=("bv",), quick=True, opt_level=2)
        assert report["compile_o2"] is report["compile"]

    def test_compile_o2_measured_separately_below_o2(self):
        report = run_bench(benchmarks=("bv",), quick=True, opt_level=0)
        assert report["compile_o2"] is not report["compile"]
        (row,) = report["compile_o2"]
        assert row["benchmark"] == "bv"
        assert row["throughput_per_s"] > 0
        json.dumps(report)

    def test_metrics_are_deltas_not_process_totals(self):
        telemetry.counter("compile.circuits").inc(100)  # prior process activity
        report = run_bench(benchmarks=("bv",), quick=True, opt_level=2)
        assert (
            report["telemetry"]["metrics"]["counters"]["compile.circuits"]
            == QUICK_PROFILE["repeats"]
        )


class TestCheckRegression:
    def _report(self, throughput):
        return {
            "schema": BENCH_SCHEMA,
            "compile": [
                {"benchmark": "bv", "throughput_per_s": throughput},
                {"benchmark": "ising", "throughput_per_s": 50.0},
            ],
        }

    def test_within_tolerance_passes(self):
        assert check_regression(self._report(80.0), self._report(100.0)) == []

    def test_regression_beyond_tolerance_is_reported(self):
        failures = check_regression(
            self._report(70.0), self._report(100.0), tolerance=0.25
        )
        assert len(failures) == 1
        assert failures[0].startswith("bv:")

    def test_faster_than_baseline_passes(self):
        assert check_regression(self._report(500.0), self._report(100.0)) == []

    def test_benchmarks_missing_from_either_side_are_ignored(self):
        current = {"schema": BENCH_SCHEMA, "compile": [{"benchmark": "qft", "throughput_per_s": 1.0}]}
        assert check_regression(current, self._report(100.0)) == []

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            check_regression(self._report(1.0), {"schema": "other/v9"})

    def _fidelity_report(self, throughput):
        return {
            "schema": BENCH_SCHEMA,
            "compile": [{"benchmark": "bv", "throughput_per_s": 100.0}],
            "fidelity": [{"benchmark": "bv", "throughput_traj_per_s": throughput}],
        }

    def test_trajectory_stage_regression_is_reported(self):
        failures = check_regression(
            self._fidelity_report(50.0), self._fidelity_report(100.0), tolerance=0.25
        )
        assert len(failures) == 1
        assert "trajectory throughput" in failures[0]

    def test_trajectory_stage_within_tolerance_passes(self):
        assert check_regression(
            self._fidelity_report(90.0), self._fidelity_report(100.0)
        ) == []

    def test_missing_fidelity_stage_is_ignored(self):
        # A compile-only report checked against a fidelity-carrying baseline
        # (or vice versa) gates only the stages both sides ran.
        assert check_regression(
            self._report(100.0), self._fidelity_report(100.0)
        ) == []

    def _o2_report(self, throughput):
        return {
            "schema": BENCH_SCHEMA,
            "compile": [{"benchmark": "sqrt", "throughput_per_s": 100.0}],
            "compile_o2": [{"benchmark": "sqrt", "throughput_per_s": throughput}],
        }

    def test_o2_compile_stage_regression_is_reported(self):
        failures = check_regression(
            self._o2_report(50.0), self._o2_report(100.0), tolerance=0.25
        )
        assert len(failures) == 1
        assert "compile throughput (-O2)" in failures[0]
        assert failures[0].startswith("sqrt:")

    def test_o2_compile_stage_within_tolerance_passes(self):
        assert check_regression(self._o2_report(90.0), self._o2_report(100.0)) == []

    def test_missing_o2_stage_is_ignored(self):
        # Reports from before the compile_o2 section gate only shared stages.
        assert check_regression(
            self._report(100.0), self._o2_report(100.0)
        ) == []


class TestPassTimeTable:
    def test_rows_from_report_spans(self):
        report = {
            "telemetry": {
                "spans": [
                    {"span": "compile.circuit", "count": 7, "total_s": 1.0, "mean_s": 0.14},
                    {"span": "compile.pass.LookaheadRoute", "count": 7, "total_s": 0.6, "mean_s": 0.0857},
                    {"span": "compile.pass.RebaseToCZ", "count": 7, "total_s": 0.2, "mean_s": 0.0286},
                ]
            }
        }
        rows = pass_time_table(report)
        assert [row["pass"] for row in rows] == ["LookaheadRoute", "RebaseToCZ"]
        assert rows[0]["count"] == 7
        assert rows[0]["share"] == "75.0%"
        assert rows[1]["share"] == "25.0%"

    def test_live_report_carries_pass_spans(self):
        report = run_bench(benchmarks=("bv",), quick=True, opt_level=2)
        rows = pass_time_table(report)
        names = {row["pass"] for row in rows}
        assert "LookaheadRoute" in names

    def test_empty_report_yields_no_rows(self):
        assert pass_time_table({}) == []


class TestBenchMain:
    def test_writes_report_and_prints_table(self, tmp_path, capsys):
        exit_code = bench_main(
            ["--quick", "--benchmarks", "bv", "--rev", "t1", "--output-dir", str(tmp_path)]
        )
        assert exit_code == 0
        report = json.loads((tmp_path / "BENCH_t1.json").read_text())
        assert report["schema"] == BENCH_SCHEMA
        out = capsys.readouterr().out
        assert "Compile throughput" in out
        assert "BENCH_t1.json" in out

    def test_check_gate_fails_on_regression(self, tmp_path, capsys):
        baseline = {
            "schema": BENCH_SCHEMA,
            "compile": [{"benchmark": "bv", "throughput_per_s": 1e9}],
        }
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        exit_code = bench_main(
            [
                "--quick", "--benchmarks", "bv", "--rev", "t2",
                "--output-dir", str(tmp_path), "--check", str(baseline_path),
            ]
        )
        assert exit_code == 1
        assert "REGRESSION: bv" in capsys.readouterr().out

    def test_pass_table_prints_per_pass_breakdown(self, tmp_path, capsys):
        exit_code = bench_main(
            [
                "--quick", "--benchmarks", "bv", "--rev", "pt",
                "--output-dir", str(tmp_path), "--pass-table",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Compile time by pass" in out
        # At least the router shows up as a named pass row.
        assert "Route" in out

    def test_profile_out_writes_a_cprofile_dump(self, tmp_path, capsys):
        import pstats

        profile_path = tmp_path / "bench.prof"
        exit_code = bench_main(
            [
                "--quick", "--benchmarks", "bv", "--rev", "prof",
                "--output-dir", str(tmp_path), "--profile-out", str(profile_path),
            ]
        )
        assert exit_code == 0
        assert profile_path.exists()
        stats = pstats.Stats(str(profile_path))  # loads => valid dump
        assert stats.total_calls > 0
        assert str(profile_path) in capsys.readouterr().out

    def test_check_gate_passes_against_own_report(self, tmp_path, capsys):
        assert bench_main(
            ["--quick", "--benchmarks", "bv", "--rev", "base", "--output-dir", str(tmp_path)]
        ) == 0
        assert bench_main(
            [
                "--quick", "--benchmarks", "bv", "--rev", "next",
                "--output-dir", str(tmp_path),
                "--check", str(tmp_path / "BENCH_base.json"),
                "--tolerance", "0.9",
            ]
        ) == 0
        assert "within 90%" in capsys.readouterr().out


class TestBenchSparse:
    def test_rows_and_speedup(self):
        from repro.runtime.bench import bench_sparse

        rows = bench_sparse(
            sparse_qubits=6, big_qubits=8, trajectories=10,
            dense_trajectories=5, batch_size=5,
        )
        assert [row["benchmark"] for row in rows] == [
            "ghz8-sparse", "ghz6-sparse", "ghz6-dense"
        ]
        assert [row["mode"] for row in rows] == ["sparse", "sparse", "statevector"]
        big, sparse, dense = rows
        assert big["trajectories"] == 10 and dense["trajectories"] == 5
        # GHZ-phase keeps exactly two nonzeros on the sparse kernel; the
        # dense rows report 0 (no sparse support tracking).
        assert big["nnz_peak"] == 2 and sparse["nnz_peak"] == 2
        assert dense["nnz_peak"] == 0
        assert sparse["speedup_vs_dense"] == pytest.approx(
            sparse["throughput_traj_per_s"] / dense["throughput_traj_per_s"]
        )
        assert "speedup_vs_dense" not in big
        json.dumps(rows)

    def test_run_bench_sparse_section_and_params(self):
        from unittest import mock

        from repro.runtime import bench as bench_module

        tiny = [{"benchmark": "ghz8-sparse", "throughput_traj_per_s": 10.0}]
        with mock.patch.object(
            bench_module, "bench_sparse", return_value=tiny
        ) as spy:
            report = run_bench(benchmarks=("bv",), quick=True, sparse=True)
        assert report["sim_sparse"] == tiny
        assert report["params"]["sparse_qubits"] == QUICK_PROFILE["sparse_qubits"]
        assert report["params"]["sparse_big_qubits"] == QUICK_PROFILE["sparse_big_qubits"]
        spy.assert_called_once_with(
            QUICK_PROFILE["sparse_qubits"],
            QUICK_PROFILE["sparse_big_qubits"],
            QUICK_PROFILE["sparse_trajectories"],
            QUICK_PROFILE["sparse_dense_trajectories"],
            QUICK_PROFILE["traj_batch"],
        )

    def test_sparse_stage_is_regression_gated(self):
        def report(throughput):
            return {
                "schema": BENCH_SCHEMA,
                "compile": [{"benchmark": "bv", "throughput_per_s": 100.0}],
                "sim_sparse": [
                    {"benchmark": "ghz28-sparse", "throughput_traj_per_s": throughput}
                ],
            }

        failures = check_regression(report(50.0), report(100.0), tolerance=0.25)
        assert len(failures) == 1
        assert "sparse trajectory throughput" in failures[0]
        assert failures[0].startswith("ghz28-sparse:")
        assert check_regression(report(90.0), report(100.0)) == []


class TestBaselineStageGaps:
    def _report(self, **sections):
        base = {"schema": BENCH_SCHEMA, "compile": [{"benchmark": "bv"}]}
        base.update(sections)
        return base

    def test_new_stage_missing_from_baseline_warns(self):
        from repro.runtime.bench import baseline_stage_gaps

        report = self._report(sim_sparse=[{"benchmark": "ghz28-sparse"}])
        gaps = baseline_stage_gaps(report, self._report())
        assert len(gaps) == 1
        assert "sim_sparse" in gaps[0]
        assert "sparse trajectory throughput" in gaps[0]

    def test_shared_stages_produce_no_warnings(self):
        from repro.runtime.bench import baseline_stage_gaps

        report = self._report(sim_sparse=[{"benchmark": "ghz28-sparse"}])
        assert baseline_stage_gaps(report, report) == []

    def test_stage_missing_from_report_is_not_a_gap(self):
        from repro.runtime.bench import baseline_stage_gaps

        baseline = self._report(fidelity=[{"benchmark": "bv"}])
        assert baseline_stage_gaps(self._report(), baseline) == []

    def test_check_regression_skips_gapped_stage(self):
        report = self._report(
            sim_sparse=[{"benchmark": "ghz28-sparse", "throughput_traj_per_s": 1.0}]
        )
        # The baseline has no sim_sparse rows at all: never a failure.
        assert check_regression(report, self._report()) == []

    def test_bench_main_prints_gap_warning_and_passes(self, tmp_path, capsys):
        # A fidelity-carrying run checked against a compile-only baseline
        # exercises the printed skip-with-warning path end to end.
        baseline = {
            "schema": BENCH_SCHEMA,
            "compile": [{"benchmark": "bv", "throughput_per_s": 1.0}],
        }
        baseline_path = tmp_path / "BENCH_old.json"
        baseline_path.write_text(json.dumps(baseline))
        exit_code = bench_main(
            [
                "--quick", "--benchmarks", "bv", "--fidelity", "--rev", "gap",
                "--output-dir", str(tmp_path), "--check", str(baseline_path),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "WARNING: baseline predates the 'fidelity' stage" in out
        assert "REGRESSION" not in out

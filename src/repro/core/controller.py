"""Behavioural model of the DigiQ controller datapath (Fig. 5, Sec. IV-B).

This module is a cycle-level functional model of the on-chip control flow —
the piece the paper implements in Verilog.  It is used for functional
verification (tests check that the emitted per-qubit pulse streams equal the
stored bitstream delayed/selected as commanded) and by the examples to show
the full program execution flow of Sec. IV-B:

1. ``Load`` — the shared SFQ bitstreams are shifted into the per-group
   storage registers, offline.
2. ``Valid``/``Ctrl. data`` — the control bits of the next controller cycle
   are streamed into Buffer #1.
3. ``Go`` — the controller clock starts; at every controller-cycle boundary
   Buffer #1 is copied into Buffer #2, whose contents drive the bitstream
   generators and qubit controllers for that cycle while the next cycle's
   control bits stream into Buffer #1 behind it.
4. Each qubit controller selects one of the ``BS`` broadcast (delayed)
   bitstreams — or none — for its drive line, and raises/lowers its SFQ/DC
   enable for the flux line on a CZ start/stop command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from .architecture import DigiQConfig

#: Reserved 1q_sel value meaning "apply none of the broadcast gates".
IDLE_SELECT = -1


@dataclass(frozen=True)
class ControlWord:
    """The control bits of one controller cycle.

    Attributes
    ----------
    bs_delays:
        Per-group tuple of the ``BS`` delay values broadcast this cycle
        (DigiQ_opt; ignored by DigiQ_min whose stored gates need no delay).
    one_q_select:
        Per-qubit selection: an index into the group's ``BS`` broadcast gates
        or :data:`IDLE_SELECT` for no operation.
    two_q_start:
        Qubits whose SFQ/DC array must be switched on this cycle (CZ start).
    two_q_stop:
        Qubits whose SFQ/DC array must be switched off this cycle (CZ stop).
    """

    bs_delays: Tuple[Tuple[int, ...], ...]
    one_q_select: Tuple[int, ...]
    two_q_start: Tuple[int, ...] = ()
    two_q_stop: Tuple[int, ...] = ()


@dataclass
class CycleOutput:
    """What the controller drove onto the qubit lines during one cycle."""

    cycle_index: int
    drive_bits: Dict[int, Tuple[int, ...]]
    flux_enabled: Tuple[int, ...]


class DigiQController:
    """Cycle-level functional model of the Fig. 5 controller datapath."""

    def __init__(self, config: DigiQConfig, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        self.config = config
        self.num_qubits = num_qubits
        self._stored_bitstreams: Dict[int, List[Tuple[int, ...]]] = {}
        self._buffer_one: Optional[ControlWord] = None
        self._buffer_two: Optional[ControlWord] = None
        self._flux_enabled: set = set()
        self._go = False
        self._cycle_index = 0
        self.cycle_log: List[CycleOutput] = []

    # -- offline loading -------------------------------------------------------------

    def load_bitstream(self, group: int, bits: Sequence[int], slot: int = 0) -> None:
        """Load one stored bitstream into a group's storage (the ``Load`` path).

        DigiQ_opt stores a single bitstream per group (slot 0); DigiQ_min
        stores ``BS`` bitstreams per group (slots ``0 .. BS-1``).
        """
        if not 0 <= group < self.config.groups:
            raise ValueError(f"group {group} outside of {self.config.groups} groups")
        max_slots = 1 if self.config.is_opt else self.config.bitstreams
        if not 0 <= slot < max_slots:
            raise ValueError(f"slot {slot} outside of {max_slots} storage slots")
        bits = tuple(int(b) for b in bits)
        if any(b not in (0, 1) for b in bits):
            raise ValueError("bitstream must contain only 0s and 1s")
        self._stored_bitstreams.setdefault(group, [()] * max_slots)[slot] = bits

    def loaded_groups(self) -> Tuple[int, ...]:
        """Groups whose storage has been loaded."""
        return tuple(sorted(self._stored_bitstreams))

    # -- control protocol --------------------------------------------------------------

    def buffer_control_word(self, word: ControlWord) -> None:
        """Stream the next cycle's control bits into Buffer #1 (``Valid`` asserted)."""
        self._validate_word(word)
        self._buffer_one = word

    def go(self) -> None:
        """Start the controller clock (the ``Go`` signal).

        The first buffered control word must already be present, matching the
        paper's protocol where ``Go`` is sent only after the first cycle's
        control bits have been transmitted.
        """
        if self._buffer_one is None:
            raise RuntimeError("Go received before any control word was buffered")
        if not self._stored_bitstreams:
            raise RuntimeError("Go received before any bitstream was loaded")
        self._go = True

    @property
    def running(self) -> bool:
        """True once Go has been received."""
        return self._go

    def step_cycle(self, next_word: Optional[ControlWord] = None) -> CycleOutput:
        """Advance one controller cycle.

        Buffer #1 is transferred into Buffer #2 and drives this cycle's
        outputs; ``next_word`` (if given) is streamed into Buffer #1 for the
        following cycle, modelling the double buffering of Fig. 5.
        """
        if not self._go:
            raise RuntimeError("the controller is not running; send Go first")
        if self._buffer_one is None:
            raise RuntimeError("no control word buffered for this cycle")
        self._buffer_two = self._buffer_one
        self._buffer_one = None
        if next_word is not None:
            self.buffer_control_word(next_word)

        word = self._buffer_two
        drive_bits: Dict[int, Tuple[int, ...]] = {}
        for qubit in range(self.num_qubits):
            selection = word.one_q_select[qubit]
            if selection == IDLE_SELECT:
                continue
            group = self.config.group_of_qubit(qubit, self.num_qubits)
            drive_bits[qubit] = self._emitted_bits(group, word, selection)

        for qubit in word.two_q_start:
            self._flux_enabled.add(qubit)
        for qubit in word.two_q_stop:
            self._flux_enabled.discard(qubit)

        output = CycleOutput(
            cycle_index=self._cycle_index,
            drive_bits=drive_bits,
            flux_enabled=tuple(sorted(self._flux_enabled)),
        )
        self.cycle_log.append(output)
        self._cycle_index += 1
        return output

    def run(self, words: Sequence[ControlWord]) -> List[CycleOutput]:
        """Buffer the first word, send Go, and step through all control words."""
        if not words:
            return []
        self.buffer_control_word(words[0])
        if not self._go:
            self.go()
        outputs = []
        for index in range(len(words)):
            next_word = words[index + 1] if index + 1 < len(words) else None
            outputs.append(self.step_cycle(next_word))
        return outputs

    # -- internals -----------------------------------------------------------------------

    def _emitted_bits(self, group: int, word: ControlWord, selection: int) -> Tuple[int, ...]:
        """The pulse pattern a qubit controller puts on its drive line this cycle."""
        stored = self._stored_bitstreams.get(group)
        if stored is None:
            raise RuntimeError(f"group {group} has no loaded bitstream")
        if not 0 <= selection < self.config.bitstreams:
            raise ValueError(
                f"1q_sel value {selection} outside of BS={self.config.bitstreams}"
            )
        if self.config.is_opt:
            bits = stored[0]
            delay = word.bs_delays[group][selection]
            if not 0 <= delay <= self.config.n_delay_slots:
                raise ValueError(
                    f"delay {delay} outside of 0..{self.config.n_delay_slots}"
                )
            window = self.config.n_delay_slots
            return tuple([0] * delay + list(bits) + [0] * (window - delay))
        bits = stored[selection]
        if not bits:
            raise RuntimeError(f"group {group} slot {selection} was never loaded")
        return bits

    def _validate_word(self, word: ControlWord) -> None:
        if len(word.one_q_select) != self.num_qubits:
            raise ValueError(
                f"control word has {len(word.one_q_select)} 1q_sel entries for "
                f"{self.num_qubits} qubits"
            )
        if self.config.is_opt:
            if len(word.bs_delays) != self.config.groups:
                raise ValueError(
                    f"control word has {len(word.bs_delays)} delay groups for "
                    f"{self.config.groups} groups"
                )
            for delays in word.bs_delays:
                if len(delays) != self.config.bitstreams:
                    raise ValueError(
                        f"each group needs {self.config.bitstreams} BS_sel delay values"
                    )
        overlap = set(word.two_q_start) & set(word.two_q_stop)
        if overlap:
            raise ValueError(f"qubits {sorted(overlap)} both start and stop a CZ")


def idle_control_word(config: DigiQConfig, num_qubits: int) -> ControlWord:
    """A control word that performs no operation on any qubit."""
    return ControlWord(
        bs_delays=tuple(
            tuple(0 for _ in range(config.bitstreams)) for _ in range(config.groups)
        ),
        one_q_select=tuple(IDLE_SELECT for _ in range(num_qubits)),
    )

"""Optimization-level guarantees: equivalence, invariants, and the -O2 payoff.

The property-based tests pin the contract of the whole pass pipeline: at any
optimization level the compiled circuit acts on the logical register exactly
like the source circuit (up to global phase), stays inside the {u3, rz, cz}
basis, and respects the device coupling.  The payoff test asserts the
acceptance criterion: ``-O2`` strictly improves scheduled depth or CZ count
over ``-O0`` on at least 3 of the 6 paper benchmarks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.benchmarks import TABLE_IV_NAMES, build_benchmark
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.simulator import circuit_unitary
from repro.compiler import compile_circuit


def random_logical_circuit(num_qubits: int, num_gates: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{seed}")
    for _ in range(num_gates):
        roll = rng.random()
        if roll < 0.4:
            name = ("h", "t", "s", "x", "sx")[int(rng.integers(5))]
            circuit.add(name, (int(rng.integers(num_qubits)),))
        elif roll < 0.6:
            name = ("rx", "ry", "rz")[int(rng.integers(3))]
            circuit.add(
                name, (int(rng.integers(num_qubits)),), (float(rng.uniform(-np.pi, np.pi)),)
            )
        elif roll < 0.9 or num_qubits < 3:
            a, b = (int(q) for q in rng.choice(num_qubits, size=2, replace=False))
            name = ("cx", "cz", "swap", "cp")[int(rng.integers(4))]
            params = (float(rng.uniform(-np.pi, np.pi)),) if name == "cp" else ()
            circuit.add(name, (a, b), params)
        else:
            a, b, c = (int(q) for q in rng.choice(num_qubits, size=3, replace=False))
            circuit.ccx(a, b, c)
    return circuit


def aligned(reference: np.ndarray, other: np.ndarray, atol: float = 1e-8) -> bool:
    """True if ``other == e^{i phi} reference`` for some global phase."""
    index = np.unravel_index(np.argmax(np.abs(reference)), reference.shape)
    if abs(other[index]) < 1e-12:
        return False
    phase = other[index] / reference[index]
    if abs(abs(phase) - 1.0) > atol:
        return False
    return np.allclose(other, phase * reference, atol=atol)


class TestLevelEquivalence:
    @given(
        num_qubits=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_optimized_levels_match_o0_up_to_global_phase(self, num_qubits, seed):
        circuit = random_logical_circuit(num_qubits, num_gates=12, seed=seed)
        baseline = compile_circuit(circuit, seed=0, opt_level=0).logical_unitary()
        for level in (1, 2):
            optimized = compile_circuit(circuit, seed=0, opt_level=level).logical_unitary()
            assert aligned(baseline, optimized), f"-O{level} diverged from -O0 (seed {seed})"

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_o0_matches_the_source_circuit(self, seed):
        circuit = random_logical_circuit(4, num_gates=10, seed=seed)
        logical = circuit_unitary(circuit)
        compiled = compile_circuit(circuit, seed=0, opt_level=0).logical_unitary()
        assert aligned(logical, compiled)


class TestLevelInvariants:
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_basis_and_coupling_respected(self, level):
        circuit = build_benchmark("qgan", num_qubits=9, seed=1)
        compiled = compile_circuit(circuit, seed=1, opt_level=level)
        for gate in compiled.physical_circuit:
            assert gate.name in ("u3", "rz", "cz")
            if gate.is_two_qubit:
                assert compiled.coupling.are_coupled(*gate.qubits)
        # The validation passes recorded clean invariants in the trace.
        names = [record.name for record in compiled.pass_trace]
        assert "ValidateBasis" in names and "ValidateCoupling" in names

    @pytest.mark.parametrize("level", [1, 2])
    def test_optimization_never_adds_gates(self, level):
        circuit = build_benchmark("add1", num_qubits=12, seed=0)
        baseline = compile_circuit(circuit, seed=0, opt_level=0)
        optimized = compile_circuit(circuit, seed=0, opt_level=level)
        assert len(optimized.physical_circuit) <= len(baseline.physical_circuit)


class TestO2Payoff:
    def test_o2_improves_three_of_six_paper_benchmarks(self):
        """Acceptance criterion: -O2 strictly beats -O0 in scheduled depth or
        CZ count on at least 3 of the 6 Table IV benchmarks (16 qubits)."""
        improved = []
        for name in TABLE_IV_NAMES:
            circuit = build_benchmark(name, num_qubits=16, seed=0)
            baseline = compile_circuit(circuit, seed=0, opt_level=0)
            aggressive = compile_circuit(circuit, seed=0, opt_level=2)
            if (
                aggressive.depth < baseline.depth
                or aggressive.num_cz_gates < baseline.num_cz_gates
            ):
                improved.append(name)
        assert len(improved) >= 3, f"-O2 only improved {improved}"

"""Variability and drift models (Sec. VI-B of the paper)."""

from .variability import (
    DEFAULT_CURRENT_SIGMA,
    DEFAULT_EJ_SIGMA,
    QubitSample,
    VariabilityModel,
    expected_frequency_fluctuation,
)

__all__ = [
    "DEFAULT_CURRENT_SIGMA",
    "DEFAULT_EJ_SIGMA",
    "QubitSample",
    "VariabilityModel",
    "expected_frequency_fluctuation",
]

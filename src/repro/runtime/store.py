"""Content-addressed on-disk result store.

Results live as one canonical-JSON file per job under the store root,
named ``<first two key hex chars>/<key>.json`` (sharded so huge sweeps do
not create million-entry directories).  Because filenames are content
hashes, a store can be shared by unrelated sweeps, resumed after an
interrupted run, or copied between machines; writers use write-to-temp +
atomic rename so a crashed worker never leaves a torn entry behind.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .. import telemetry

#: Default store location, relative to the current working directory.
DEFAULT_STORE_DIR = ".repro_cache/sweeps"

logger = logging.getLogger(__name__)


def canonical_json(data: Dict[str, object]) -> str:
    """The canonical serialized form: sorted keys, minimal separators."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """A directory of content-addressed job results."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else Path(DEFAULT_STORE_DIR)
        self._corrupt_seen = 0
        self._warned_corrupt = False

    # -- addressing -----------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk path of one job key."""
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed job key '{key}'")
        return self.root / key[:2] / f"{key}.json"

    # -- reads ----------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored result dict for a key, or None on a cache miss.

        Torn/corrupt JSON entries read as misses (the dispatcher recomputes
        and atomically replaces them) but are *not* silent: each one bumps
        the ``store.corrupt`` counter and the instance's ``stats()['corrupt']``
        count, and the first one per store instance logs a warning naming
        the offending path.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                result = json.load(handle)
        except FileNotFoundError:
            telemetry.counter("store.miss").inc()
            return None
        except json.JSONDecodeError:
            self._corrupt_seen += 1
            telemetry.counter("store.corrupt").inc()
            telemetry.counter("store.miss").inc()
            if not self._warned_corrupt:
                self._warned_corrupt = True
                logger.warning(
                    "result store %s holds a torn/corrupt entry at %s; treating "
                    "as a cache miss (it will be recomputed and replaced; "
                    "further corrupt entries in this store are counted "
                    "silently — see stats()['corrupt'])",
                    self.root,
                    path,
                )
            return None
        telemetry.counter("store.hit").inc()
        return result

    def __contains__(self, key: str) -> bool:
        # Delegates to get() so a torn/corrupt entry reads as absent, exactly
        # as it does for every other read path.
        return self.get(key) is not None

    def keys(self) -> List[str]:
        """All stored job keys (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    # -- accounting -----------------------------------------------------------------

    def _entry_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, object]:
        """Store accounting: entry count, total bytes, schema-version histogram.

        The histogram groups entries by the ``schema`` field of their stored
        payload (``None`` for unreadable/torn entries), which is how mixed
        stores left behind by version bumps are spotted before pruning.
        ``corrupt`` counts the torn/corrupt entries *this instance's*
        ``get()`` calls have swallowed as misses so far.
        """
        entries = 0
        total_bytes = 0
        schema_versions: Dict[object, int] = {}
        for path in self._entry_paths():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries += 1
            total_bytes += size
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, json.JSONDecodeError):
                # The scan reads directly (not via get()) so inventorying a
                # store never skews its hit/miss/corrupt accounting.
                stored = None
            schema = None if stored is None else stored.get("schema")
            label = "unreadable" if schema is None else str(schema)
            schema_versions[label] = schema_versions.get(label, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "total_bytes": total_bytes,
            "corrupt": self._corrupt_seen,
            "schema_versions": dict(sorted(schema_versions.items())),
        }

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        keep: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Evict oldest entries until both limits hold; returns removed keys.

        Age is the entry file's modification time (ties broken by key, so a
        prune is deterministic for a given on-disk state).  ``None`` leaves
        a limit unenforced; calling with neither limit is a no-op.  Limits
        must be non-negative — ``max_entries=0`` empties the store.

        ``keep`` names keys that must survive the prune no matter their age
        — the queue CLI passes the active (queued/running) jobs' result
        keys, so pruning a store a live daemon is executing into can never
        evict an entry a job is about to read or write.  Protected entries
        still count toward the limits, so a prune may end above its limits
        when everything old is protected.
        """
        for name, limit in (("max_entries", max_entries), ("max_bytes", max_bytes)):
            if limit is not None and limit < 0:
                raise ValueError(f"{name} must be >= 0, got {limit}")
        if max_entries is None and max_bytes is None:
            return []
        protected = frozenset(keep or ())
        aged = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, path.stem, stat.st_size))
        aged.sort()
        entries = len(aged)
        total_bytes = sum(size for _, _, size in aged)
        removed: List[str] = []
        for _, key, size in aged:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not over_entries and not over_bytes:
                break
            if key in protected:
                continue
            if self.discard(key):
                removed.append(key)
            entries -= 1
            total_bytes -= size
        return removed

    # -- writes ---------------------------------------------------------------------

    def put(self, key: str, result: Dict[str, object]) -> Path:
        """Atomically persist one result dict under its key."""
        telemetry.counter("store.put").inc()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(canonical_json(result))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def discard(self, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            removed += self.discard(key)
        return removed

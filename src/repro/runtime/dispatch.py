"""The sweep dispatcher: cache lookup, compile-group batching, worker pool.

:func:`run_sweep` turns a :class:`~repro.runtime.spec.SweepGrid` into result
rows in three steps:

1. expand the grid into jobs and compute each job's content-addressed key;
2. split cache hits from misses against the :class:`~repro.runtime.store.ResultStore`;
3. batch the misses by *compile group* — all backends of one benchmark
   instance that share a device topology share a single compilation — and
   execute the groups either serially or on a ``ProcessPoolExecutor``.

Results are re-assembled in grid-expansion order, so a parallel run yields
exactly the same row sequence (byte-identical under canonical JSON) as a
serial run, and a resumed run as an uninterrupted one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from .jobs import JobResult, execute_compile_group, job_key, ordered_row, run_group_payload
from .spec import ExperimentSpec, SweepGrid
from .store import ResultStore, canonical_json


@dataclass
class SweepReport:
    """Outcome of one sweep: ordered rows plus cache accounting."""

    grid: SweepGrid
    keys: List[str]
    results: List[JobResult]
    computed_keys: List[str] = field(default_factory=list)
    cached_keys: List[str] = field(default_factory=list)
    duplicate_keys: List[str] = field(default_factory=list)

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Fig. 9-style rows in grid order (the sweep's primary artifact).

        Column order is canonicalised so cached and freshly computed rows
        render (and serialize) identically.
        """
        return [ordered_row(result.row) for result in self.results]

    @property
    def num_jobs(self) -> int:
        return len(self.keys)

    @property
    def num_computed(self) -> int:
        return len(self.computed_keys)

    @property
    def num_cached(self) -> int:
        return len(self.cached_keys)

    @property
    def num_duplicates(self) -> int:
        """Grid positions whose key repeats an earlier position (shared work)."""
        return len(self.duplicate_keys)

    def summary(self) -> Dict[str, object]:
        """Headline accounting for logs and the CLI banner.

        ``computed + cached + duplicates == jobs`` always holds.
        """
        return {
            "jobs": self.num_jobs,
            "computed": self.num_computed,
            "cached": self.num_cached,
            "duplicates": self.num_duplicates,
            "benchmarks": len(self.grid.benchmarks),
            "backends": len(self.grid.backends),
            "seeds": len(self.grid.seeds),
        }

    def pass_traces(self) -> List[Dict[str, object]]:
        """Per-pass compile metrics, one entry per compile group in grid order.

        All backends of one compiled benchmark that share a topology share
        the same trace, so each group contributes a single entry (results
        computed before schema v3 carry no trace and are skipped).
        """
        seen = set()
        traces: List[Dict[str, object]] = []
        for result in self.results:
            if not result.trace:
                continue
            spec = result.spec
            ident = (
                spec.get("benchmark"),
                spec.get("num_qubits"),
                spec.get("seed"),
                spec.get("backend", {}).get("topology"),
                canonical_json(spec.get("compile", {})),
            )
            if ident in seen:
                continue
            seen.add(ident)
            traces.append(
                {
                    "benchmark": spec.get("benchmark"),
                    "num_qubits": spec.get("num_qubits"),
                    "seed": spec.get("seed"),
                    "opt_level": spec.get("compile", {}).get("opt_level"),
                    "passes": list(result.trace),
                }
            )
        return traces


#: Environment variable overriding the default worker-pool size everywhere a
#: pool is sized implicitly (the sweep dispatcher, the CLI, primitive
#: sessions).  An explicit ``workers=`` / ``--workers`` argument still wins.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_worker_count() -> int:
    """Worker-pool size when the caller does not pin one (>= 1).

    Defaults to ``min(4, cpu_count)``; the ``REPRO_MAX_WORKERS`` environment
    variable overrides that cap (useful on large machines where four workers
    under-use the host, or in CI where one worker keeps runs predictable).
    """
    override = os.environ.get(MAX_WORKERS_ENV)
    if override is not None and override.strip():
        try:
            workers = int(override)
        except ValueError:
            raise ValueError(
                f"{MAX_WORKERS_ENV} must be a positive integer, got {override!r}"
            ) from None
        if workers < 1:
            raise ValueError(
                f"{MAX_WORKERS_ENV} must be a positive integer, got {override!r}"
            )
        return workers
    return max(1, min(4, (os.cpu_count() or 1)))


def compute_job_keys(specs: Sequence[ExperimentSpec]) -> List[str]:
    """Content keys for a list of jobs, building each source circuit once."""
    circuits: Dict[Tuple[object, ...], object] = {}
    keys = []
    for spec in specs:
        ident = (spec.benchmark, spec.num_qubits, spec.seed, id(spec.circuit))
        if ident not in circuits:
            circuits[ident] = spec.source_circuit()
        keys.append(job_key(spec, circuit=circuits[ident]))
    return keys


def _group_payloads(
    specs: Sequence[ExperimentSpec], keys: Sequence[str], missing: Sequence[int]
) -> List[Dict[str, object]]:
    """Batch cache-missing jobs into per-compile-group worker payloads."""
    groups: Dict[Tuple[object, ...], Dict[str, object]] = {}
    for index in missing:
        spec = specs[index]
        payload = groups.get(spec.compile_group)
        if payload is None:
            payload = {
                "benchmark": spec.benchmark,
                "num_qubits": spec.num_qubits,
                "seed": spec.seed,
                "circuit": None if spec.circuit is None else spec.circuit.as_dict(),
                "compile": spec.compile_options.as_dict(),
                "jobs": [],
            }
            groups[spec.compile_group] = payload
        payload["jobs"].append(
            {
                "key": keys[index],
                "backend": spec.backend.to_dict(),
                "fidelity": spec.fidelity.as_dict() if spec.fidelity is not None else None,
            }
        )
    return list(groups.values())


def run_sweep(
    grid: SweepGrid,
    store: Optional[ResultStore] = None,
    workers: int = 1,
) -> SweepReport:
    """Run (or resume) a sweep, returning rows in deterministic grid order.

    Parameters
    ----------
    grid:
        The sweep axes.
    store:
        Result cache; defaults to :class:`ResultStore`'s default directory.
        Completed jobs found in the store are never recomputed.
    workers:
        ``1`` executes compile groups serially in-process; ``> 1`` fans them
        out over a ``ProcessPoolExecutor`` of that size.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    store = store if store is not None else ResultStore()

    with telemetry.span(
        "sweep.run", jobs=len(grid), workers=workers
    ) as sweep_span:
        specs = grid.expand()
        keys = compute_job_keys(specs)

        by_key: Dict[str, JobResult] = {}
        cached_keys: List[str] = []
        duplicate_keys: List[str] = []
        missing_indices: List[int] = []
        seen = set()
        for index, key in enumerate(keys):
            if key in seen:  # duplicate axis entry: one computation serves both
                duplicate_keys.append(key)
                continue
            seen.add(key)
            stored = store.get(key)
            if stored is not None:
                by_key[key] = JobResult.from_dict(stored)
                cached_keys.append(key)
            else:
                missing_indices.append(index)

        payloads = _group_payloads(specs, keys, missing_indices)
        collect_spans = telemetry.enabled()
        # A sweep that collapses to one compile group (or runs serially with a
        # worker budget) hands its workers down to the group's own trajectory
        # batches instead of leaving them idle; pooled groups keep their
        # simulations in-process so process pools never nest.
        in_process = workers == 1 or len(payloads) == 1
        for payload in payloads:
            payload["telemetry"] = collect_spans
            payload["sim_workers"] = workers if in_process else 1

        def persist(batch: Sequence[Dict[str, object]]) -> None:
            for result_dict in batch:
                result = JobResult.from_dict(result_dict)
                store.put(result.key, result.as_dict())
                by_key[result.key] = result

        if payloads:
            # Each group's results are persisted as soon as that group
            # finishes, so an interrupted sweep keeps every completed group
            # and a resumed run only recomputes the remainder.
            if workers == 1 or len(payloads) == 1:
                for payload in payloads:
                    persist(execute_compile_group(payload))
            else:
                parent_id = sweep_span.span_id if sweep_span is not None else None
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(payloads))
                ) as pool:
                    futures = [pool.submit(run_group_payload, p) for p in payloads]
                    for future in as_completed(futures):
                        persist(future.result()["results"])
                # Worker telemetry is merged in *submission* order (not
                # completion order), so the merged span sequence — and
                # therefore summaries and traces — is deterministic for a
                # given grid, exactly like the result rows.
                for future in futures:
                    shipped = future.result()
                    telemetry.merge_spans(shipped["spans"], parent_id=parent_id)
                    telemetry.merge_metrics(shipped["metrics"])
        # Deterministic accounting order regardless of worker completion order.
        computed_keys = [job["key"] for payload in payloads for job in payload["jobs"]]

        telemetry.counter("sweep.jobs").inc(len(keys))
        telemetry.counter("sweep.computed").inc(len(computed_keys))
        telemetry.counter("sweep.cached").inc(len(cached_keys))
        telemetry.counter("sweep.duplicates").inc(len(duplicate_keys))

    results = [by_key[key] for key in keys]
    return SweepReport(
        grid=grid,
        keys=keys,
        results=results,
        computed_keys=computed_keys,
        cached_keys=cached_keys,
        duplicate_keys=duplicate_keys,
    )

"""Crosstalk-aware scheduling of CZ-basis circuits.

After routing and rebasing, the compiler groups gates into *moments*: sets of
gates that execute simultaneously.  Plain ASAP layering already guarantees
that no two gates in a moment share a qubit; the crosstalk-aware pass of the
paper [Murali et al., ASPLOS 2020] additionally forbids two CZ gates on
*adjacent couplers* (couplers that share a qubit or whose qubits are direct
neighbours on the device) from firing together, since their always-on
interactions interfere.  When a conflict arises, the offending CZ is deferred
to a later moment.

The output :class:`Schedule` is what the DigiQ SIMD scheduler and the
execution-time model consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gate import Gate
from .coupling import CouplingMap


@dataclass
class Moment:
    """One scheduling step: gates that execute simultaneously."""

    gates: List[Gate] = field(default_factory=list)

    @property
    def single_qubit_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_single_qubit]

    @property
    def two_qubit_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_two_qubit]

    def qubits(self) -> Set[int]:
        """All qubits touched in this moment."""
        result: Set[int] = set()
        for gate in self.gates:
            result.update(gate.qubits)
        return result


@dataclass
class Schedule:
    """A sequence of moments covering every gate of a circuit."""

    moments: List[Moment]
    num_qubits: int

    @property
    def depth(self) -> int:
        """Number of moments."""
        return len(self.moments)

    def gate_count(self) -> int:
        """Total number of scheduled gates."""
        return sum(len(moment.gates) for moment in self.moments)

    def max_parallel_two_qubit(self) -> int:
        """Largest number of simultaneous two-qubit gates in any moment."""
        if not self.moments:
            return 0
        return max(len(m.two_qubit_gates) for m in self.moments)

    def max_parallel_single_qubit(self) -> int:
        """Largest number of simultaneous single-qubit gates in any moment."""
        if not self.moments:
            return 0
        return max(len(m.single_qubit_gates) for m in self.moments)

    def summary(self) -> dict:
        """Headline schedule metrics (used by the per-pass compile trace)."""
        return {
            "depth": self.depth,
            "gates": self.gate_count(),
            "max_parallel_two_qubit": self.max_parallel_two_qubit(),
            "max_parallel_single_qubit": self.max_parallel_single_qubit(),
        }


def asap_schedule(circuit: QuantumCircuit) -> Schedule:
    """Plain ASAP layering (no crosstalk constraint)."""
    moments: List[Moment] = []
    frontier = [0] * circuit.num_qubits
    for gate in circuit:
        level = max(frontier[q] for q in gate.qubits)
        while len(moments) <= level:
            moments.append(Moment())
        moments[level].gates.append(gate)
        for q in gate.qubits:
            frontier[q] = level + 1
    return Schedule(moments=moments, num_qubits=circuit.num_qubits)


def crosstalk_aware_schedule(
    circuit: QuantumCircuit,
    coupling: Optional[CouplingMap] = None,
) -> Schedule:
    """Schedule a circuit with the crosstalk constraint on simultaneous CZs.

    Each gate is placed in the earliest moment that satisfies:

    * every earlier gate on the same qubits has already been scheduled
      (dependency order);
    * no other gate in the moment shares a qubit with it;
    * if the gate is a two-qubit gate and ``coupling`` is given, no other
      two-qubit gate in the moment sits on an adjacent coupler.
    """
    moments: List[Moment] = []
    moment_qubits: List[Set[int]] = []
    # Per-moment closure of crosstalk-blocked qubits: a two-qubit gate on
    # (u, v) blocks u, v, and every direct neighbour of either, so a later
    # two-qubit gate conflicts iff one of its endpoints lands in the
    # closure.  Equivalent to the pairwise :func:`_couplers_adjacent` scan
    # over the moment's couplers, without the scan.
    moment_blocked: List[Set[int]] = []
    frontier = [0] * circuit.num_qubits
    adjacency = coupling._adjacency if coupling is not None else None
    closure_cache: Dict[Tuple[int, int], Set[int]] = {}

    def closure(coupler: Tuple[int, int]) -> Set[int]:
        hit = closure_cache.get(coupler)
        if hit is None:
            u, v = coupler
            hit = {u, v}
            hit.update(adjacency[u])
            hit.update(adjacency[v])
            closure_cache[coupler] = hit
        return hit

    for gate in circuit:
        qubits = gate.qubits
        if len(qubits) == 1:
            index = frontier[qubits[0]]
            check_crosstalk = False
        else:
            index = max(frontier[q] for q in qubits)
            check_crosstalk = adjacency is not None and len(qubits) == 2
        while True:
            while len(moments) <= index:
                moments.append(Moment())
                moment_qubits.append(set())
                moment_blocked.append(set())
            used = moment_qubits[index]
            if not any(q in used for q in qubits):
                if not check_crosstalk:
                    break
                blocked = moment_blocked[index]
                if qubits[0] not in blocked and qubits[1] not in blocked:
                    break
            index += 1
        moments[index].gates.append(gate)
        moment_qubits[index].update(qubits)
        if check_crosstalk:
            moment_blocked[index].update(closure(tuple(sorted(qubits))))
        for q in qubits:
            frontier[q] = index + 1
    return Schedule(moments=moments, num_qubits=circuit.num_qubits)


def _couplers_adjacent(
    coupling: CouplingMap, a: Tuple[int, int], b: Tuple[int, int]
) -> bool:
    """True if two couplers share a qubit or have directly-coupled endpoints."""
    if set(a) & set(b):
        return True
    for qubit_a in a:
        for qubit_b in b:
            if coupling.are_coupled(qubit_a, qubit_b):
                return True
    return False

"""The metrics registry: named counters, gauges, and histograms.

Unlike spans, metrics are *always* recorded — a counter increment is one
locked integer add, cheap enough to leave on unconditionally — so cache
hit/miss ratios and job accounting are available even when no trace sink
or collection window is open.

All three instrument kinds snapshot to plain JSON and merge additively
(counters and histograms sum; gauges keep the incoming sample), which is
how worker-process registries fold back into the parent's after a
``run_sweep`` fan-out: serial and parallel runs of the same grid produce
exactly equal counter values.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class Counter:
    """A monotonically increasing count (cache hits, jobs computed, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for level values")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins level value (queue depth, store bytes, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Streaming distribution summary: count, sum, min, max.

    Keeps O(1) state rather than samples, so it can sit on per-batch kernel
    paths; mean is derived at read time.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    def summary(self) -> Dict[str, object]:
        with self._lock:
            mean = self._total / self._count if self._count else None
            return {
                "count": self._count,
                "total": self._total,
                "min": self._min,
                "max": self._max,
                "mean": mean,
            }


class MetricsRegistry:
    """Process-local, thread-safe registry of named instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def reset(self) -> None:
        """Drop every instrument (worker-task entry / test isolation)."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state of every instrument (sorted names)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: counters[name].value for name in sorted(counters)},
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        """Fold a worker registry's snapshot into this one (additive)."""
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, summary in (snapshot.get("histograms") or {}).items():
            histogram = self.histogram(name)
            count = int(summary.get("count") or 0)
            if count == 0:
                continue
            with histogram._lock:
                histogram._count += count
                histogram._total += float(summary.get("total") or 0.0)
                for bound, pick in (("min", min), ("max", max)):
                    incoming = summary.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(histogram, f"_{bound}")
                    merged = incoming if current is None else pick(current, incoming)
                    setattr(histogram, f"_{bound}", merged)

"""Estimator: exact expectations vs statevector, trajectory estimates, observables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, simulate
from repro.primitives import Estimator, PauliObservable, Session
from repro.runtime import CompileOptions, FidelityOptions

PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.diag([1.0, -1.0]).astype(complex),
}


def dense_expectation(state, observable: PauliObservable) -> float:
    """Independent dense-matrix reference: <psi| sum_i c_i P_i |psi>."""
    total = 0.0
    for label, coeff in observable.terms:
        matrix = np.eye(1, dtype=complex)
        # Little-endian register: qubit 0 is the least significant factor.
        for pauli in reversed(label):
            matrix = np.kron(matrix, PAULI[pauli])
        total += coeff * float(np.real(np.vdot(state, matrix @ state)))
    return total


def random_circuit(num_qubits: int, rng: np.random.Generator) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(3 * num_qubits):
        kind = rng.integers(0, 4)
        qubit = int(rng.integers(0, num_qubits))
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.ry(float(rng.uniform(0, 2 * np.pi)), qubit)
        elif kind == 2:
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), qubit)
        elif num_qubits > 1:
            other = int(rng.integers(0, num_qubits - 1))
            other = other if other != qubit else num_qubits - 1
            circuit.cx(qubit, other)
    return circuit


class TestExactMethod:
    @settings(max_examples=12, deadline=None)
    @given(
        num_qubits=st.integers(2, 6),
        circuit_seed=st.integers(0, 1000),
        label_seed=st.integers(0, 1000),
        opt_level=st.sampled_from([0, 1, 2]),
    )
    def test_matches_statevector_to_1e9_on_small_circuits(
        self, num_qubits, circuit_seed, label_seed, opt_level
    ):
        """Acceptance property: compiled-circuit expectations == ideal ones."""
        rng = np.random.default_rng(circuit_seed)
        circuit = random_circuit(num_qubits, rng)
        label_rng = np.random.default_rng(label_seed)
        label = "".join(label_rng.choice(list("IXYZ")) for _ in range(num_qubits))
        observable = PauliObservable.from_label(label)

        estimate = (
            Estimator("digiq-opt8")
            .run(
                circuit,
                observable,
                compile_options=CompileOptions(opt_level=opt_level),
            )
            .result()[0]
        )
        expected = dense_expectation(simulate(circuit), observable)
        assert estimate.method == "exact"
        assert estimate.value == pytest.approx(expected, abs=1e-9)

    def test_weighted_sum_observable(self):
        circuit = QuantumCircuit(3, name="ghz")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        observable = PauliObservable.from_terms({"ZZI": 0.5, "IZZ": 0.5, "XXX": 2.0})
        value = Estimator("digiq-opt8").run(circuit, observable).result()[0].value
        assert value == pytest.approx(0.5 + 0.5 + 2.0, abs=1e-9)

    def test_one_circuit_broadcasts_over_many_observables(self):
        circuit = QuantumCircuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        result = Estimator("digiq-opt8").run(circuit, ["ZZ", "XX", "ZI"]).result()
        values = {entry.observable: entry.value for entry in result}
        assert values["ZZ"] == pytest.approx(1.0, abs=1e-9)
        assert values["XX"] == pytest.approx(1.0, abs=1e-9)
        assert values["ZI"] == pytest.approx(0.0, abs=1e-9)


class TestTrajectoryMethod:
    def test_zero_noise_trajectories_match_exact(self):
        # With every rate forced to zero the trajectory mean is the ideal
        # expectation for any trajectory count.
        circuit = QuantumCircuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        session = Session("digiq-opt8")
        estimator = Estimator(session)
        exact = estimator.run(circuit, "ZZ").result()[0].value

        from repro.primitives.observables import PauliObservable as PO
        from repro.simulation import NoiseModel
        from repro.simulation.trajectories import noisy_trajectory_states

        spec = session.make_specs(circuit)[0]
        compiled = session.compiled_for(spec)
        silent = NoiseModel(
            num_qubits=compiled.coupling.num_qubits,
            default_single_rate=0.0,
            default_coupler_rate=0.0,
        )
        states = noisy_trajectory_states(compiled.physical_circuit, silent, 10, seed=0)
        qubit_map = [compiled.final_layout.physical(q) for q in range(2)]
        values = PO.from_label("ZZ").expectation(
            states, num_qubits=compiled.coupling.num_qubits, qubit_map=qubit_map
        )
        assert np.allclose(values, exact, atol=1e-9)

    def test_noisy_estimate_is_seeded_and_bounded(self):
        circuit = QuantumCircuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        options = FidelityOptions(trajectories=60, noise_seed=3)
        estimator = Estimator("digiq-opt8")
        first = estimator.run(
            circuit, "ZZ", method="trajectories", fidelity_options=options, seed=5
        ).result()[0]
        second = estimator.run(
            circuit, "ZZ", method="trajectories", fidelity_options=options, seed=5
        ).result()[0]
        assert first.value == second.value  # fully pinned by the seeds
        assert first.trajectories == 60
        assert first.std_error >= 0.0
        assert -1.0 <= first.value <= 1.0
        # Noise can only pull |<ZZ>| below the ideal value of 1.
        assert first.value <= 1.0

    def test_exact_method_respects_simulation_cap(self):
        # 30 logical qubits -> >20 physical: refuse instead of a 16 GB alloc.
        with pytest.raises(ValueError, match="exact estimation"):
            Estimator("digiq-opt8").run("bv", "I" * 30, num_qubits=30).result()

    def test_trajectory_method_respects_simulation_cap(self):
        options = FidelityOptions(trajectories=5, max_qubits=4)
        with pytest.raises(ValueError, match="max_qubits"):
            Estimator("digiq-opt8").run(
                "bv",
                "I" * 8,
                num_qubits=8,
                method="trajectories",
                fidelity_options=options,
            ).result()


class TestValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown estimation method"):
            Estimator("digiq-opt8").run("bv", "Z" * 8, method="shadow")

    def test_observable_width_mismatch_rejected(self):
        circuit = QuantumCircuit(3, name="c")
        circuit.h(0)
        with pytest.raises(ValueError, match="addresses"):
            Estimator("digiq-opt8").run(circuit, "ZZ")

    def test_broadcast_shape_mismatch_rejected(self):
        a = QuantumCircuit(2, name="a")
        a.h(0)
        b = QuantumCircuit(2, name="b")
        b.h(1)
        c = QuantumCircuit(2, name="c")
        c.x(0)
        with pytest.raises(ValueError, match="broadcast"):
            Estimator("digiq-opt8").run([a, b, c], ["ZZ", "XX"])

    def test_bad_pauli_label_rejected(self):
        with pytest.raises(ValueError, match="unknown characters"):
            PauliObservable.from_label("ZQ")

    def test_mixed_width_terms_rejected(self):
        with pytest.raises(ValueError, match="register width"):
            PauliObservable.from_terms({"ZZ": 1.0, "ZZZ": 1.0})


class TestObservableExpectation:
    @settings(max_examples=20, deadline=None)
    @given(num_qubits=st.integers(1, 5), seed=st.integers(0, 500))
    def test_expectation_matches_dense_reference(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
        state /= np.linalg.norm(state)
        label = "".join(rng.choice(list("IXYZ")) for _ in range(num_qubits))
        observable = PauliObservable.from_label(label)
        assert float(observable.expectation(state)) == pytest.approx(
            dense_expectation(state, observable), abs=1e-9
        )

    def test_qubit_map_relocates_the_observable(self):
        # |psi> = |0>_p0 x |1>_p1: Z on physical 0 is +1, on physical 1 is -1.
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0  # basis |q1=1, q0=0>
        z = PauliObservable.from_label("Z")
        assert float(z.expectation(state, num_qubits=2, qubit_map=[0])) == pytest.approx(1.0)
        assert float(z.expectation(state, num_qubits=2, qubit_map=[1])) == pytest.approx(-1.0)

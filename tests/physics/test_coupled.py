"""Unit tests for repro.physics.coupled (two-transmon physics)."""

import numpy as np
import pytest

from repro.physics.coupled import (
    CZ_TARGET,
    FluxPulseCalibration,
    TwoTransmonSystem,
    computational_indices,
    cz_target,
    embed_single_qubit_pair,
    project_two_qubit,
    simulate_uqq,
)
from repro.physics.operators import PAULI_X, is_hermitian, is_unitary
from repro.physics.transmon import Transmon, TransmonPairParameters


@pytest.fixture(scope="module")
def pair():
    return TransmonPairParameters(
        qubit_a=Transmon(frequency=6.21286, anharmonicity=-0.25, levels=3),
        qubit_b=Transmon(frequency=4.14238, anharmonicity=-0.25, levels=3),
        coupling=0.010,
        levels=3,
    )


@pytest.fixture(scope="module")
def system(pair):
    return TwoTransmonSystem(pair)


class TestHamiltonian:
    def test_hamiltonian_is_hermitian(self, system):
        assert is_hermitian(system.hamiltonian())

    def test_dimension(self, system):
        assert system.dimension == 9

    def test_resonance_frequency(self, system, pair):
        resonance = system.resonance_frequency_for_cz()
        assert np.isclose(resonance, pair.qubit_b.frequency - pair.qubit_a.anharmonicity)

    def test_cz_hold_time_matches_coupling(self, system, pair):
        assert np.isclose(system.cz_hold_time_ns(), 1.0 / (2 * np.sqrt(2) * pair.coupling))


class TestPropagation:
    def test_static_propagator_unitary(self, system):
        assert is_unitary(system.static_propagator(10.0))

    def test_idle_pair_is_nearly_identity_in_rotating_frame(self, system):
        duration = 20.0
        unitary = system.rotating_frame(duration) @ system.static_propagator(duration)
        projected = project_two_qubit(unitary, 3)
        # The parked pair is far off resonance, so idling is identity up to
        # small dispersive phases.
        fidelity = abs(np.trace(projected.conj().T @ np.diag(np.exp(-1j * np.angle(np.diag(projected)))))) / 4
        assert fidelity > 0.99

    def test_trajectory_validation(self, system):
        with pytest.raises(ValueError):
            system.propagate_frequency_trajectory([], 0.1)
        with pytest.raises(ValueError):
            system.propagate_frequency_trajectory([5.0], -0.1)

    def test_trajectory_merges_equal_segments(self, system):
        # A constant trajectory must equal a single static propagation.
        traj = system.propagate_frequency_trajectory([6.21286] * 50, 0.1)
        static = system.static_propagator(5.0)
        assert np.allclose(traj, static, atol=1e-9)


class TestProjection:
    def test_computational_indices(self):
        assert computational_indices(3) == (0, 1, 3, 4)

    def test_project_shape_validation(self):
        with pytest.raises(ValueError):
            project_two_qubit(np.eye(8), 3)

    def test_cz_target_properties(self):
        target = cz_target()
        assert np.allclose(target, np.diag([1, 1, 1, -1]))
        assert is_unitary(target)
        assert target is not CZ_TARGET  # a defensive copy

    def test_embed_single_qubit_pair(self):
        embedded = embed_single_qubit_pair(PAULI_X, np.eye(2), 3)
        assert embedded.shape == (9, 9)
        projected = project_two_qubit(embedded, 3)
        assert np.allclose(projected, np.kron(PAULI_X, np.eye(2)))


class TestFluxPulse:
    def test_calibrate_for_resonance(self, system):
        calibration = FluxPulseCalibration.calibrate_for_resonance(system, 1.0)
        trajectory = calibration.frequency_trajectory(6.21286, [1.0])
        assert np.isclose(trajectory[0], system.resonance_frequency_for_cz())

    def test_amplitude_scale_shifts_excursion(self):
        calibration = FluxPulseCalibration(ghz_per_ma=-1.8, amplitude_scale=1.01)
        nominal = FluxPulseCalibration(ghz_per_ma=-1.8)
        assert calibration.frequency_trajectory(6.2, [1.0])[0] < nominal.frequency_trajectory(6.2, [1.0])[0]

    def test_simulate_uqq_is_unitary(self, system):
        calibration = FluxPulseCalibration.calibrate_for_resonance(system, 1.0)
        currents = np.concatenate([np.linspace(0, 1, 20), np.ones(100), np.linspace(1, 0, 20)])
        unitary = simulate_uqq(system, currents, 0.25, calibration)
        assert is_unitary(unitary)

    def test_calibrate_rejects_nonpositive_current(self, system):
        with pytest.raises(ValueError):
            FluxPulseCalibration.calibrate_for_resonance(system, 0.0)

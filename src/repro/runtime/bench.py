"""``repro bench`` — the tracked Table IV benchmark harness.

:func:`run_bench` times the paper's six benchmarks (:data:`TABLE_IV_NAMES`)
through the real compile pipeline — and, with ``fidelity=True``, through the
Monte-Carlo trajectory engine — inside a :func:`repro.telemetry.collecting`
window, then folds the aggregated spans and the metrics delta into a
schema-versioned report (:data:`BENCH_SCHEMA`).  ``sparse=True`` adds the
``sim_sparse`` stage: the GHZ-phase benchmark run through the sparse
low-entanglement trajectory kernel, once past the dense 24-qubit ceiling
(completion check) and once head-to-head against the dense statevector
kernel at a width both can simulate (``speedup_vs_dense``).

:func:`bench_main` (the ``repro bench`` subcommand) writes the report to
``BENCH_<rev>.json`` — ``rev`` defaults to the short git revision — and can
gate CI with ``--check BASELINE``: the run fails when any benchmark's
compile throughput (at both the default level and ``-O2``) — or, for
fidelity/sparse runs, its Monte-Carlo trajectory throughput — drops more
than ``--tolerance`` (default 25%) below the committed baseline.  Stages
the baseline predates are skipped with a printed warning, never a failure
(:func:`baseline_stage_gaps`).
``--pass-table`` prints where compile time goes pass by pass, and
``--profile-out PROF`` dumps a cProfile of the whole run for deeper hunts.

Examples::

    python -m repro.runtime bench --quick
    python -m repro.runtime bench --quick --fidelity --sparse
    python -m repro.runtime bench --quick --fidelity --rev baseline
    python -m repro.runtime bench --quick --check BENCH_baseline.json
    python -m repro.runtime bench --quick --pass-table --profile-out bench.prof
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

from .. import telemetry
from ..analysis.report import format_table
from ..circuits.benchmarks import TABLE_IV_NAMES, build_benchmark, ghz_phase_circuit
from ..compiler.pipeline import DEFAULT_OPT_LEVEL, OPT_LEVELS, compile_circuit
from ..simulation.channels import NoiseModel
from ..simulation.engine import run_trajectories
from ..telemetry.summary import aggregate_spans

#: Version tag of the ``BENCH_<rev>.json`` report layout.
BENCH_SCHEMA = "repro-bench/v1"

#: Compile-stage parameters: (device qubits, timed repeats per benchmark).
FULL_PROFILE = {
    "qubits": 16, "repeats": 7, "trajectories": 100, "traj_batch": 25, "sim_qubits": 10,
    "sparse_qubits": 20, "sparse_big_qubits": 32,
    "sparse_trajectories": 200, "sparse_dense_trajectories": 10,
}
# Quick compiles are a few milliseconds, so the regression gate needs several
# repeats for a stable best-of time; seven keeps the whole suite under a second.
# The sparse stage's dense-comparison row dominates its wall time (each dense
# 20-qubit trajectory costs ~2 s), so it runs only a handful of trajectories.
QUICK_PROFILE = {
    "qubits": 8, "repeats": 7, "trajectories": 100, "traj_batch": 25, "sim_qubits": 6,
    "sparse_qubits": 20, "sparse_big_qubits": 28,
    "sparse_trajectories": 100, "sparse_dense_trajectories": 5,
}


def _metrics_delta(
    before: Mapping[str, object], after: Mapping[str, object]
) -> Dict[str, object]:
    """Counter/histogram activity between two registry snapshots.

    The registry is process-global and cumulative, so a bench run embedded
    in a longer process (tests, notebooks) diffs snapshots instead of
    resetting shared state.  Histogram min/max are not invertible across
    snapshots and are dropped; count/total/mean describe the window.
    """
    delta: Dict[str, object] = {"counters": {}, "gauges": dict(after.get("gauges") or {}), "histograms": {}}
    prior = before.get("counters") or {}
    for name, value in (after.get("counters") or {}).items():
        moved = value - prior.get(name, 0)
        if moved:
            delta["counters"][name] = moved
    prior = before.get("histograms") or {}
    for name, summary in (after.get("histograms") or {}).items():
        base = prior.get(name) or {}
        count = summary["count"] - base.get("count", 0)
        if not count:
            continue
        total = summary["total"] - base.get("total", 0.0)
        delta["histograms"][name] = {
            "count": count,
            "total": total,
            "mean": total / count,
        }
    return delta


def bench_compile(
    name: str, num_qubits: int, repeats: int, opt_level: int
) -> Dict[str, object]:
    """Time ``repeats`` full compilations of one benchmark (best-of wins).

    Throughput is derived from the *minimum* wall time — the usual
    microbenchmark convention, and far more stable than the mean under CI
    scheduler noise (which is what ``--check`` compares against).
    """
    circuit = build_benchmark(name, num_qubits=num_qubits, seed=0)
    times: List[float] = []
    gates = depth = None
    for _ in range(repeats):
        start = time.perf_counter()
        compiled = compile_circuit(circuit, seed=0, opt_level=opt_level)
        times.append(time.perf_counter() - start)
        gates = len(compiled.physical_circuit)
        depth = compiled.physical_circuit.depth()
    best = min(times)
    return {
        "benchmark": name,
        "qubits": circuit.num_qubits,
        "gates": gates,
        "depth": depth,
        "repeats": repeats,
        "mean_s": sum(times) / len(times),
        "min_s": best,
        "throughput_per_s": 1.0 / best if best > 0 else None,
    }


def bench_fidelity(
    name: str, sim_qubits: int, trajectories: int, batch_size: int
) -> Dict[str, object]:
    """Trajectory throughput of one benchmark on the statevector engine."""
    circuit = build_benchmark(name, num_qubits=sim_qubits, seed=0)
    noise = NoiseModel.uniform(circuit.num_qubits)
    start = time.perf_counter()
    result = run_trajectories(
        circuit, noise, num_trajectories=trajectories, seed=0, batch_size=batch_size
    )
    wall = time.perf_counter() - start
    return {
        "benchmark": name,
        "qubits": circuit.num_qubits,
        "trajectories": result.num_trajectories,
        "wall_s": wall,
        "throughput_traj_per_s": result.num_trajectories / wall if wall > 0 else None,
        "state_fidelity": result.state_fidelity,
        "kicks": result.kicks,
    }


def _sparse_row(
    num_qubits: int, mode: str, trajectories: int, batch_size: int
) -> Dict[str, object]:
    """One ``sim_sparse`` row: the GHZ-phase workload on one kernel."""
    circuit = ghz_phase_circuit(num_qubits=num_qubits, seed=0)
    noise = NoiseModel.uniform(circuit.num_qubits)
    start = time.perf_counter()
    result = run_trajectories(
        circuit,
        noise,
        num_trajectories=trajectories,
        seed=0,
        batch_size=batch_size,
        mode=mode,
    )
    wall = time.perf_counter() - start
    label = "dense" if mode == "statevector" else "sparse"
    return {
        "benchmark": f"ghz{num_qubits}-{label}",
        "qubits": num_qubits,
        "mode": mode,
        "trajectories": result.num_trajectories,
        "wall_s": wall,
        "throughput_traj_per_s": result.num_trajectories / wall if wall > 0 else None,
        "state_fidelity": result.state_fidelity,
        "kicks": result.kicks,
        "nnz_peak": result.nnz_peak,
    }


def bench_sparse(
    sparse_qubits: int,
    big_qubits: int,
    trajectories: int,
    dense_trajectories: int,
    batch_size: int,
) -> List[Dict[str, object]]:
    """The ``sim_sparse`` stage: sparse-kernel throughput on GHZ-phase.

    Three rows: the sparse kernel at ``big_qubits`` (past the dense
    24-qubit ceiling — completing at all is the point), the sparse kernel
    at ``sparse_qubits``, and the dense statevector kernel at the same
    ``sparse_qubits`` for a head-to-head.  The head-to-head sparse row
    carries ``speedup_vs_dense``; the dense row runs far fewer
    trajectories because each one costs seconds at 20 qubits.
    """
    rows = [
        _sparse_row(big_qubits, "sparse", trajectories, batch_size),
        _sparse_row(sparse_qubits, "sparse", trajectories, batch_size),
        _sparse_row(sparse_qubits, "statevector", dense_trajectories, batch_size),
    ]
    sparse_tp = rows[1]["throughput_traj_per_s"]
    dense_tp = rows[2]["throughput_traj_per_s"]
    rows[1]["speedup_vs_dense"] = (
        sparse_tp / dense_tp if sparse_tp and dense_tp else None
    )
    return rows


def run_bench(
    benchmarks: Sequence[str] = TABLE_IV_NAMES,
    quick: bool = False,
    fidelity: bool = False,
    sparse: bool = False,
    opt_level: int = DEFAULT_OPT_LEVEL,
    rev: str = "local",
) -> Dict[str, object]:
    """Run the benchmark suite and return the schema-versioned report."""
    profile = QUICK_PROFILE if quick else FULL_PROFILE
    metrics_before = telemetry.snapshot_metrics()
    with telemetry.collecting():
        compile_rows = [
            bench_compile(name, profile["qubits"], profile["repeats"], opt_level)
            for name in benchmarks
        ]
        # -O2 exercises the full pipeline (lookahead routing + fusion) and is
        # regression-gated per benchmark like the default level; when the run
        # already times -O2 the rows are shared instead of re-measured.
        if opt_level == 2:
            compile_o2_rows = compile_rows
        else:
            compile_o2_rows = [
                bench_compile(name, profile["qubits"], profile["repeats"], 2)
                for name in benchmarks
            ]
        fidelity_rows = None
        if fidelity:
            fidelity_rows = [
                bench_fidelity(
                    name,
                    profile["sim_qubits"],
                    profile["trajectories"],
                    profile["traj_batch"],
                )
                for name in benchmarks
            ]
        sparse_rows = None
        if sparse:
            sparse_rows = bench_sparse(
                profile["sparse_qubits"],
                profile["sparse_big_qubits"],
                profile["sparse_trajectories"],
                profile["sparse_dense_trajectories"],
                profile["traj_batch"],
            )
        spans = telemetry.snapshot_spans()
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "rev": rev,
        "quick": quick,
        "params": {
            "benchmarks": list(benchmarks),
            "opt_level": opt_level,
            "qubits": profile["qubits"],
            "repeats": profile["repeats"],
        },
        "compile": compile_rows,
        "compile_o2": compile_o2_rows,
        "telemetry": {
            "spans": aggregate_spans(spans),
            "metrics": _metrics_delta(metrics_before, telemetry.snapshot_metrics()),
        },
    }
    if fidelity_rows is not None:
        report["params"].update(
            {
                "sim_qubits": profile["sim_qubits"],
                "trajectories": profile["trajectories"],
                "traj_batch": profile["traj_batch"],
            }
        )
        report["fidelity"] = fidelity_rows
    if sparse_rows is not None:
        report["params"].update(
            {
                "sparse_qubits": profile["sparse_qubits"],
                "sparse_big_qubits": profile["sparse_big_qubits"],
                "sparse_trajectories": profile["sparse_trajectories"],
                "sparse_dense_trajectories": profile["sparse_dense_trajectories"],
            }
        )
        report["sim_sparse"] = sparse_rows
    return report


#: Regression-gated report stages: (section key, throughput column, label).
#: ``check_regression`` compares these; ``baseline_stage_gaps`` warns when a
#: baseline predates one of them, so a newly added stage lands without a
#: chicken-and-egg baseline edit.
_GATED_STAGES = (
    ("compile", "throughput_per_s", "compile throughput"),
    ("compile_o2", "throughput_per_s", "compile throughput (-O2)"),
    ("fidelity", "throughput_traj_per_s", "trajectory throughput"),
    ("sim_sparse", "throughput_traj_per_s", "sparse trajectory throughput"),
)


def baseline_stage_gaps(
    report: Mapping[str, object], baseline: Mapping[str, object]
) -> List[str]:
    """Warnings for gated stages the baseline predates.

    A stage measured by ``report`` but absent from ``baseline`` (typically a
    freshly added bench section gated before the committed baseline was
    regenerated) cannot be compared; :func:`check_regression` skips it, and
    this returns one human-readable warning per such stage so the skip is
    visible instead of silent.
    """
    return [
        f"baseline predates the '{section}' stage; skipping its {label} gate"
        for section, _column, label in _GATED_STAGES
        if report.get(section) and not baseline.get(section)
    ]


def check_regression(
    report: Mapping[str, object],
    baseline: Mapping[str, object],
    tolerance: float = 0.25,
) -> List[str]:
    """Throughput regressions of ``report`` against ``baseline``.

    Every stage in :data:`_GATED_STAGES` carried by both reports is gated.
    Returns one message per benchmark/stage whose throughput fell more than
    ``tolerance`` (fractional) below the baseline's.  Benchmarks (or whole
    stages) present in only one report are skipped, never a failure —
    adding or dropping a benchmark is not a performance regression, and a
    baseline that predates a new stage must not block landing it (use
    :func:`baseline_stage_gaps` to surface those skips as warnings).
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"baseline schema {baseline.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    failures = []
    for section, column, label in _GATED_STAGES:
        current = {row["benchmark"]: row for row in report.get(section) or []}
        for base_row in baseline.get(section) or []:
            row = current.get(base_row["benchmark"])
            if row is None:
                continue
            base_tp, new_tp = base_row.get(column), row.get(column)
            if not base_tp or not new_tp:
                continue
            floor = base_tp * (1.0 - tolerance)
            if new_tp < floor:
                failures.append(
                    f"{row['benchmark']}: {label} {new_tp:.2f}/s is "
                    f"{(1.0 - new_tp / base_tp) * 100.0:.0f}% below baseline "
                    f"{base_tp:.2f}/s (tolerance {tolerance * 100.0:.0f}%)"
                )
    return failures


def _git_rev() -> str:
    """Short revision of the working tree, or ``local`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def _compile_table(rows: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    return [
        {
            "benchmark": row["benchmark"],
            "qubits": row["qubits"],
            "gates": row["gates"],
            "mean_ms": f"{row['mean_s'] * 1000.0:.1f}",
            "min_ms": f"{row['min_s'] * 1000.0:.1f}",
            "compiles_per_s": f"{row['throughput_per_s']:.2f}",
        }
        for row in rows
    ]


#: Span-name prefix of the per-pass compile telemetry spans.
_PASS_SPAN_PREFIX = "compile.pass."


def pass_time_table(report: Mapping[str, object]) -> List[Dict[str, object]]:
    """Per-pass wall-time share rows from a bench report's telemetry spans.

    Every compilation is already traced with one ``compile.pass.<Name>``
    span per pass, so the report's aggregated spans directly answer "where
    does compile time go".  ``share`` is each pass's fraction of the total
    time spent inside passes (pipeline overhead outside passes is excluded).
    Rows come pre-sorted by total time, slowest pass first.
    """
    spans = (report.get("telemetry") or {}).get("spans") or []
    pass_rows = [row for row in spans if row["span"].startswith(_PASS_SPAN_PREFIX)]
    total = sum(row["total_s"] for row in pass_rows)
    return [
        {
            "pass": row["span"][len(_PASS_SPAN_PREFIX):],
            "count": row["count"],
            "total_s": f"{row['total_s']:.3f}",
            "mean_ms": f"{row['mean_s'] * 1000.0:.2f}",
            "share": f"{row['total_s'] / total * 100.0:.1f}%" if total else "n/a",
        }
        for row in pass_rows
    ]


def _fidelity_table(rows: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    return [
        {
            "benchmark": row["benchmark"],
            "qubits": row["qubits"],
            "trajectories": row["trajectories"],
            "wall_s": f"{row['wall_s']:.2f}",
            "traj_per_s": f"{row['throughput_traj_per_s']:.1f}",
            "fidelity": f"{row['state_fidelity']:.4f}",
        }
        for row in rows
    ]


def _sparse_table(rows: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    return [
        {
            "benchmark": row["benchmark"],
            "qubits": row["qubits"],
            "mode": row["mode"],
            "trajectories": row["trajectories"],
            "wall_s": f"{row['wall_s']:.2f}",
            "traj_per_s": f"{row['throughput_traj_per_s']:.1f}",
            "nnz_peak": row["nnz_peak"],
            "vs_dense": (
                f"{row['speedup_vs_dense']:.0f}x"
                if row.get("speedup_vs_dense")
                else "-"
            ),
        }
        for row in rows
    ]


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime bench",
        description="Benchmark the Table IV suite and write BENCH_<rev>.json.",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=list(TABLE_IV_NAMES), metavar="NAME",
        help=f"benchmarks to time (default: {' '.join(TABLE_IV_NAMES)})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small instances and fewer repeats (the CI profile)",
    )
    parser.add_argument(
        "--fidelity", action="store_true",
        help="also measure Monte-Carlo trajectory throughput per benchmark",
    )
    parser.add_argument(
        "--sparse", action="store_true",
        help="also measure the sparse trajectory kernel on the GHZ-phase "
        "workload (past the dense ceiling, plus a dense head-to-head)",
    )
    parser.add_argument(
        "--opt-level", type=int, default=DEFAULT_OPT_LEVEL, choices=OPT_LEVELS,
        help="compiler optimization level to benchmark",
    )
    parser.add_argument(
        "--rev", default=None, metavar="REV",
        help="revision label of the report file (default: short git revision)",
    )
    parser.add_argument(
        "--output-dir", default=".", metavar="DIR",
        help="directory the BENCH_<rev>.json report is written to (default .)",
    )
    parser.add_argument(
        "--pass-table", action="store_true",
        help="print the per-pass compile wall-time share table",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="PROF",
        help="dump a cProfile of the whole bench run to this file "
        "(inspect with `python -m pstats PROF`)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="fail (exit 1) if compile or trajectory throughput regresses "
        "below this BENCH_*.json baseline by more than --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional throughput drop with --check (default 0.25)",
    )
    return parser


def bench_main(argv: Sequence[str]) -> int:
    """Entry point of ``python -m repro.runtime bench ...``."""
    parser = build_bench_parser()
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    rev = args.rev if args.rev is not None else _git_rev()
    profiler = None
    if args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    report = run_bench(
        benchmarks=args.benchmarks,
        quick=args.quick,
        fidelity=args.fidelity,
        sparse=args.sparse,
        opt_level=args.opt_level,
        rev=rev,
    )
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(args.profile_out)
    out_path = Path(args.output_dir) / f"BENCH_{rev}.json"
    out_path.write_text(json.dumps(report, sort_keys=True, indent=2) + "\n")

    print(format_table(_compile_table(report["compile"]), title="Compile throughput"))
    if report.get("compile_o2") is not report["compile"]:
        print()
        print(
            format_table(
                _compile_table(report["compile_o2"]), title="Compile throughput (-O2)"
            )
        )
    if "fidelity" in report:
        print()
        print(
            format_table(
                _fidelity_table(report["fidelity"]), title="Trajectory throughput"
            )
        )
    if "sim_sparse" in report:
        print()
        print(
            format_table(
                _sparse_table(report["sim_sparse"]),
                title="Sparse kernel throughput (GHZ-phase)",
            )
        )
    if args.pass_table:
        print()
        print(format_table(pass_time_table(report), title="Compile time by pass"))
    print(f"\nwrote {out_path}")
    if profiler is not None:
        print(f"wrote profile to {args.profile_out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        for gap in baseline_stage_gaps(report, baseline):
            print(f"WARNING: {gap}")
        failures = check_regression(report, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"throughput within {args.tolerance * 100.0:.0f}% of {args.check}")
    return 0
